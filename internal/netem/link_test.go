package netem

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"attain/internal/clock"
)

func TestLinkDeliversBothDirections(t *testing.T) {
	l := NewLink(clock.New(), LinkConfig{})
	defer l.Close()

	gotA := make(chan []byte, 1)
	gotB := make(chan []byte, 1)
	l.A().SetReceiver(func(f []byte) { gotA <- f })
	l.B().SetReceiver(func(f []byte) { gotB <- f })

	l.A().Send([]byte("to-b"))
	l.B().Send([]byte("to-a"))

	select {
	case f := <-gotB:
		if !bytes.Equal(f, []byte("to-b")) {
			t.Errorf("B received %q", f)
		}
	case <-time.After(time.Second):
		t.Fatal("B never received")
	}
	select {
	case f := <-gotA:
		if !bytes.Equal(f, []byte("to-a")) {
			t.Errorf("A received %q", f)
		}
	case <-time.After(time.Second):
		t.Fatal("A never received")
	}
}

func TestLinkPreservesOrder(t *testing.T) {
	l := NewLink(clock.New(), LinkConfig{Latency: time.Millisecond, QueueLen: 1000})
	defer l.Close()

	const n = 200
	var mu sync.Mutex
	var got []byte
	done := make(chan struct{})
	l.B().SetReceiver(func(f []byte) {
		mu.Lock()
		got = append(got, f[0])
		if len(got) == n {
			close(done)
		}
		mu.Unlock()
	})
	for i := 0; i < n; i++ {
		l.A().Send([]byte{byte(i)})
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("only %d/%d delivered", len(got), n)
	}
	for i := 0; i < n; i++ {
		if got[i] != byte(i) {
			t.Fatalf("frame %d out of order: got %d", i, got[i])
		}
	}
}

func TestLinkLatency(t *testing.T) {
	const latency = 50 * time.Millisecond
	clk := clock.New()
	l := NewLink(clk, LinkConfig{Latency: latency})
	defer l.Close()

	done := make(chan time.Time, 1)
	l.B().SetReceiver(func([]byte) { done <- clk.Now() })
	start := clk.Now()
	l.A().Send([]byte("x"))
	select {
	case end := <-done:
		if d := end.Sub(start); d < latency {
			t.Errorf("delivered after %v, want >= %v", d, latency)
		}
	case <-time.After(time.Second):
		t.Fatal("never delivered")
	}
}

func TestLinkBandwidthPacing(t *testing.T) {
	// 1000-byte frames at 800 kbps = 10ms serialization each.
	clk := clock.New()
	l := NewLink(clk, LinkConfig{BandwidthBps: 800_000})
	defer l.Close()

	const n = 5
	done := make(chan struct{})
	var count int
	l.B().SetReceiver(func([]byte) {
		count++
		if count == n {
			close(done)
		}
	})
	frame := make([]byte, 1000)
	start := clk.Now()
	for i := 0; i < n; i++ {
		l.A().Send(frame)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("frames never all delivered")
	}
	elapsed := clk.Now().Sub(start)
	if elapsed < 40*time.Millisecond {
		t.Errorf("5 frames delivered in %v, want >= ~50ms of serialization", elapsed)
	}
}

func TestLinkAverageRateMatchesBandwidth(t *testing.T) {
	// 100 frames of 1250 bytes at 1 Mbps = 10ms each = 1s total. The
	// paced average must land near the configured rate despite sleep
	// coalescing (using a scaled clock so the test stays fast).
	clk := clock.NewScaled(20)
	l := NewLink(clk, LinkConfig{BandwidthBps: 1_000_000, QueueLen: 256})
	defer l.Close()

	const n = 100
	frame := make([]byte, 1250)
	done := make(chan struct{})
	var count int
	l.B().SetReceiver(func([]byte) {
		count++
		if count == n {
			close(done)
		}
	})
	start := clk.Now()
	for i := 0; i < n; i++ {
		l.A().Send(frame)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("delivered %d/%d", count, n)
	}
	elapsed := clk.Now().Sub(start)
	rate := float64(n) * float64(len(frame)) * 8 / elapsed.Seconds()
	// Within 2x of 1 Mbps either way (scheduling noise under scaling).
	if rate < 0.5e6 || rate > 2e6 {
		t.Errorf("measured rate %.0f bps over %v, want ~1e6", rate, elapsed)
	}
}

func TestLinkQueueOverflowDrops(t *testing.T) {
	// Slow link, tiny queue: flooding must drop.
	l := NewLink(clock.New(), LinkConfig{BandwidthBps: 8_000, QueueLen: 2})
	defer l.Close()
	l.B().SetReceiver(func([]byte) {})
	for i := 0; i < 100; i++ {
		l.A().Send(make([]byte, 100))
	}
	st := l.StatsA2B()
	if st.Dropped == 0 {
		t.Errorf("stats = %+v, want drops", st)
	}
	if st.Enqueued+st.Dropped != 100 {
		t.Errorf("enqueued %d + dropped %d != 100", st.Enqueued, st.Dropped)
	}
}

func TestLinkLossProbability(t *testing.T) {
	l := NewLink(clock.New(), LinkConfig{LossProb: 0.5, LossSeed: 7, QueueLen: 2048})
	defer l.Close()
	var delivered int
	done := make(chan struct{}, 2048)
	l.B().SetReceiver(func([]byte) { done <- struct{}{} })
	const n = 1000
	for i := 0; i < n; i++ {
		l.A().Send([]byte{byte(i)})
	}
	// Wait for deliveries to settle.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-done:
			delivered++
			continue
		case <-time.After(100 * time.Millisecond):
		case <-deadline:
		}
		break
	}
	st := l.StatsA2B()
	if st.Dropped == 0 {
		t.Fatal("no losses at 50% loss probability")
	}
	if st.Dropped+st.Enqueued != n {
		t.Errorf("dropped %d + enqueued %d != %d", st.Dropped, st.Enqueued, n)
	}
	// Loose binomial bounds around 50%.
	if st.Dropped < 400 || st.Dropped > 600 {
		t.Errorf("dropped %d of %d, outside plausible 50%% range", st.Dropped, n)
	}
	if delivered == 0 {
		t.Error("nothing delivered at 50% loss")
	}
}

func TestLinkLossDeterministicBySeed(t *testing.T) {
	run := func() uint64 {
		l := NewLink(clock.New(), LinkConfig{LossProb: 0.3, LossSeed: 42, QueueLen: 1024})
		defer l.Close()
		l.B().SetReceiver(func([]byte) {})
		for i := 0; i < 500; i++ {
			l.A().Send([]byte{1})
		}
		return l.StatsA2B().Dropped
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed dropped %d then %d", a, b)
	}
}

func TestLinkDownDropsAndUpRestores(t *testing.T) {
	l := NewLink(clock.New(), LinkConfig{})
	defer l.Close()
	got := make(chan []byte, 10)
	l.B().SetReceiver(func(f []byte) { got <- f })

	l.A().Down()
	l.A().Send([]byte("lost"))
	select {
	case <-got:
		t.Fatal("frame delivered over a down port")
	case <-time.After(50 * time.Millisecond):
	}

	l.A().Up()
	l.A().Send([]byte("ok"))
	select {
	case f := <-got:
		if string(f) != "ok" {
			t.Errorf("received %q", f)
		}
	case <-time.After(time.Second):
		t.Fatal("frame not delivered after Up")
	}
}

func TestLinkSendCopiesBuffer(t *testing.T) {
	l := NewLink(clock.New(), LinkConfig{Latency: 10 * time.Millisecond})
	defer l.Close()
	got := make(chan []byte, 1)
	l.B().SetReceiver(func(f []byte) { got <- f })
	buf := []byte("original")
	l.A().Send(buf)
	copy(buf, "REWRITE!")
	select {
	case f := <-got:
		if string(f) != "original" {
			t.Errorf("received %q, sender mutation leaked", f)
		}
	case <-time.After(time.Second):
		t.Fatal("never delivered")
	}
}

func TestLinkCloseStopsDelivery(t *testing.T) {
	l := NewLink(clock.New(), LinkConfig{Latency: time.Hour})
	l.A().Send([]byte("stuck"))
	doneCh := make(chan struct{})
	go func() {
		l.Close()
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return with a frame in flight")
	}
}

func TestLinkStatsCountBytes(t *testing.T) {
	l := NewLink(clock.New(), LinkConfig{})
	defer l.Close()
	done := make(chan struct{})
	l.B().SetReceiver(func([]byte) { close(done) })
	l.A().Send(make([]byte, 123))
	<-done
	if st := l.StatsA2B(); st.Bytes != 123 || st.Delivered != 1 {
		t.Errorf("stats = %+v", st)
	}
}
