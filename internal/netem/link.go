// Package netem provides the network fabric of the ATTAIN simulator:
// full-duplex links with configurable bandwidth, propagation latency, and
// bounded queues for the data plane, and pluggable stream transports (real
// loopback TCP or in-memory pipes) for the control plane.
package netem

import (
	"math/rand"
	"sync"
	"time"

	"attain/internal/clock"
)

// DefaultQueueLen is the per-direction frame queue capacity.
const DefaultQueueLen = 256

// LinkConfig describes one link's characteristics. The zero value means an
// infinitely fast, zero-latency link with the default queue.
type LinkConfig struct {
	// BandwidthBps is the serialization rate in bits per second; 0 means
	// unlimited.
	BandwidthBps int64
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// QueueLen is the per-direction queue capacity in frames; 0 means
	// DefaultQueueLen.
	QueueLen int
	// Coalesce is the smallest pacing wait the link actually sleeps for;
	// shorter waits are accumulated and paid in bursts. This keeps the
	// average rate exact when per-frame transmission times fall below the
	// OS sleep granularity (scaled clocks). 0 means 2 ms.
	Coalesce time.Duration
	// LossProb drops each frame independently with this probability,
	// modelling a lossy medium. Drawn from a deterministic per-pipe
	// generator seeded with LossSeed for reproducible runs.
	LossProb float64
	// LossSeed seeds the loss generator (0 uses a fixed default).
	LossSeed int64
}

// Mbps converts megabits per second to a BandwidthBps value.
func Mbps(n int64) int64 { return n * 1_000_000 }

// LinkStats counts one direction's activity.
type LinkStats struct {
	Enqueued  uint64
	Delivered uint64
	Dropped   uint64
	Bytes     uint64
}

// Link is a full-duplex point-to-point link between two attachment points A
// and B. Frames submitted on one side are delivered, in order, to the
// receiver installed on the other side after serialization and propagation
// delay. Each direction drops frames when its queue is full.
type Link struct {
	a2b *pipe
	b2a *pipe
}

// NewLink creates a link. Its per-direction goroutines start lazily on
// first use, so an idle link costs none; call Close to stop them.
func NewLink(clk clock.Clock, cfg LinkConfig) *Link {
	return &Link{
		a2b: newPipe(clk, cfg),
		b2a: newPipe(clk, cfg),
	}
}

// A returns the A-side attachment point.
func (l *Link) A() *Port { return &Port{send: l.a2b, recv: l.b2a} }

// B returns the B-side attachment point.
func (l *Link) B() *Port { return &Port{send: l.b2a, recv: l.a2b} }

// StatsA2B returns counters for the A-to-B direction.
func (l *Link) StatsA2B() LinkStats { return l.a2b.stats() }

// StatsB2A returns counters for the B-to-A direction.
func (l *Link) StatsB2A() LinkStats { return l.b2a.stats() }

// Close stops the link's goroutines and waits for them to exit. Frames
// still in flight are discarded.
func (l *Link) Close() {
	l.a2b.close()
	l.b2a.close()
}

// Port is one side's view of a link: Send pushes a frame toward the far
// side; SetReceiver installs the function invoked with frames arriving from
// the far side.
type Port struct {
	send *pipe
	recv *pipe
}

// Send enqueues a frame toward the far side. It never blocks; a full queue
// drops the frame.
func (p *Port) Send(frame []byte) { p.send.enqueue(frame) }

// SetReceiver installs the delivery function for inbound frames. The
// function runs on the link's delivery goroutine and must not block for
// long.
func (p *Port) SetReceiver(fn func([]byte)) { p.recv.setReceiver(fn) }

// Down marks this port's inbound and outbound directions as down (frames are
// silently dropped), simulating a pulled cable.
func (p *Port) Down() {
	p.send.setDown(true)
	p.recv.setDown(true)
}

// Up re-enables the port after Down.
func (p *Port) Up() {
	p.send.setDown(false)
	p.recv.setDown(false)
}

// timed pairs a frame with its scheduled delivery instant.
type timed struct {
	frame     []byte
	deliverAt time.Time
}

// pipe is one direction of a link: a serializer stage models bandwidth, a
// propagation stage models latency, and delivery preserves order.
//
// The two stage goroutines start lazily on the first enqueued frame: a
// fabric-scale topology instantiates thousands of links at bring-up, most
// of them idle until traffic arrives, and an idle link must cost zero
// goroutines.
type pipe struct {
	clk clock.Clock
	cfg LinkConfig

	in   chan []byte
	prop chan timed
	stop chan struct{}
	done chan struct{}

	mu      sync.Mutex
	recv    func([]byte)
	down    bool
	started bool
	closed  bool
	rng     *rand.Rand
	st      LinkStats
}

func newPipe(clk clock.Clock, cfg LinkConfig) *pipe {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = DefaultQueueLen
	}
	if cfg.Coalesce <= 0 {
		cfg.Coalesce = 2 * time.Millisecond
	}
	return &pipe{
		clk:  clk,
		cfg:  cfg,
		in:   make(chan []byte, cfg.QueueLen),
		prop: make(chan timed, cfg.QueueLen),
		stop: make(chan struct{}),
		done: make(chan struct{}),
		rng:  rand.New(rand.NewSource(cfg.LossSeed + 1)),
	}
}

func (p *pipe) setReceiver(fn func([]byte)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.recv = fn
}

func (p *pipe) setDown(down bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.down = down
}

func (p *pipe) isDown() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.down
}

func (p *pipe) stats() LinkStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st
}

func (p *pipe) enqueue(frame []byte) {
	p.mu.Lock()
	if p.down || p.closed {
		p.st.Dropped++
		p.mu.Unlock()
		return
	}
	if p.cfg.LossProb > 0 && p.rng.Float64() < p.cfg.LossProb {
		p.st.Dropped++
		p.mu.Unlock()
		return
	}
	if !p.started {
		p.started = true
		go p.run()
	}
	p.mu.Unlock()
	// Copy: the sender may reuse its buffer.
	f := append([]byte(nil), frame...)
	select {
	case p.in <- f:
		p.mu.Lock()
		p.st.Enqueued++
		p.mu.Unlock()
	default:
		p.mu.Lock()
		p.st.Dropped++
		p.mu.Unlock()
	}
}

func (p *pipe) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	started := p.started
	p.mu.Unlock()
	close(p.stop)
	if started {
		<-p.done
	}
}

// run drives both stages. The serializer paces frames at the configured
// bandwidth; the propagator holds each frame for the latency, preserving
// FIFO order while allowing serialization and propagation to overlap.
func (p *pipe) run() {
	var wg sync.WaitGroup
	wg.Add(2)

	// Serializer. Pacing uses a busy-until horizon rather than per-frame
	// sleeps so back-to-back frames serialize at the configured rate even
	// when individual transmission times are below the scheduler's sleep
	// granularity (important under scaled clocks).
	go func() {
		defer wg.Done()
		var busyUntil time.Time
		for {
			select {
			case <-p.stop:
				return
			case frame := <-p.in:
				now := p.clk.Now()
				if busyUntil.Before(now) {
					busyUntil = now
				}
				if p.cfg.BandwidthBps > 0 {
					tx := time.Duration(int64(len(frame)) * 8 * int64(time.Second) / p.cfg.BandwidthBps)
					busyUntil = busyUntil.Add(tx)
					if wait := busyUntil.Sub(now); wait > p.cfg.Coalesce {
						select {
						case <-p.stop:
							return
						case <-p.clk.After(wait):
						}
					}
				}
				entry := timed{frame: frame, deliverAt: busyUntil.Add(p.cfg.Latency)}
				select {
				case <-p.stop:
					return
				case p.prop <- entry:
				}
			}
		}
	}()

	// Propagator / deliverer. It always sleeps when ahead of schedule so
	// a lone packet pays the full propagation delay; when a sleep
	// overshoots (scaled clocks), queued frames whose deliverAt has
	// already passed flow out immediately, so the average rate stays
	// exact.
	go func() {
		defer wg.Done()
		for {
			select {
			case <-p.stop:
				return
			case entry := <-p.prop:
				if wait := entry.deliverAt.Sub(p.clk.Now()); wait > 0 {
					select {
					case <-p.stop:
						return
					case <-p.clk.After(wait):
					}
				}
				if p.isDown() {
					p.mu.Lock()
					p.st.Dropped++
					p.mu.Unlock()
					continue
				}
				p.mu.Lock()
				recv := p.recv
				p.st.Delivered++
				p.st.Bytes += uint64(len(entry.frame))
				p.mu.Unlock()
				if recv != nil {
					recv(entry.frame)
				}
			}
		}
	}()

	wg.Wait()
	close(p.done)
}
