package netem

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// Transport abstracts the byte-stream network used for control-plane
// connections, so the injector proxy, switches, and controllers can run
// over real loopback TCP (fidelity) or in-memory pipes (fast, hermetic
// tests) without code changes.
type Transport interface {
	// Listen starts accepting connections on addr.
	Listen(addr string) (net.Listener, error)
	// Dial connects to addr.
	Dial(addr string) (net.Conn, error)
}

// TCPTransport is the real-network transport.
type TCPTransport struct{}

var _ Transport = TCPTransport{}

// Listen implements Transport using net.Listen("tcp", addr).
func (TCPTransport) Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// Dial implements Transport using net.Dial("tcp", addr).
func (TCPTransport) Dial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}

// ErrAddrInUse is returned when an in-memory address is already bound.
var ErrAddrInUse = errors.New("netem: address already in use")

// ErrConnRefused is returned when nothing listens on a dialed in-memory
// address.
var ErrConnRefused = errors.New("netem: connection refused")

// MemTransport is an in-process transport. Addresses are arbitrary strings
// scoped to one MemTransport instance. The default connection pair is
// net.Pipe (synchronous rendezvous, the strictest ordering for tests);
// NewBufferedMemTransport swaps in ring-buffered pairs so writers are
// decoupled from reader pace — what a kernel socket buffer provides on a
// real network, and what batched flushes need to not stall per frame.
type MemTransport struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	newPair   func() (client, server net.Conn)
}

var _ Transport = (*MemTransport)(nil)

// NewMemTransport returns an empty in-memory network over net.Pipe pairs.
func NewMemTransport() *MemTransport {
	return &MemTransport{
		listeners: make(map[string]*memListener),
		newPair:   func() (net.Conn, net.Conn) { return net.Pipe() },
	}
}

// NewBufferedMemTransport returns an in-memory network whose connections
// buffer size bytes per direction (size <= 0 uses DefaultBufConnSize).
func NewBufferedMemTransport(size int) *MemTransport {
	return &MemTransport{
		listeners: make(map[string]*memListener),
		newPair:   func() (net.Conn, net.Conn) { return newBufConnPair(size) },
	}
}

// Listen implements Transport.
func (t *MemTransport) Listen(addr string) (net.Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.listeners[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	l := &memListener{
		transport: t,
		addr:      addr,
		acceptCh:  make(chan net.Conn),
		closed:    make(chan struct{}),
	}
	t.listeners[addr] = l
	return l, nil
}

// Dial implements Transport.
func (t *MemTransport) Dial(addr string) (net.Conn, error) {
	t.mu.Lock()
	l := t.listeners[addr]
	t.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	}
	client, server := t.newPair()
	select {
	case l.acceptCh <- server:
		return client, nil
	case <-l.closed:
		_ = client.Close()
		_ = server.Close()
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	}
}

type memListener struct {
	transport *MemTransport
	addr      string
	acceptCh  chan net.Conn
	closeOnce sync.Once
	closed    chan struct{}
}

var _ net.Listener = (*memListener)(nil)

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.acceptCh:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.closed)
		l.transport.mu.Lock()
		if l.transport.listeners[l.addr] == l {
			delete(l.transport.listeners, l.addr)
		}
		l.transport.mu.Unlock()
	})
	return nil
}

func (l *memListener) Addr() net.Addr { return memAddr(l.addr) }

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }
