package netem

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"
)

func TestBufConnRoundTrip(t *testing.T) {
	a, b := newBufConnPair(64)
	msg := []byte("hello, fabric")
	go func() {
		if _, err := a.Write(msg); err != nil {
			t.Error(err)
		}
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
}

// TestBufConnWriteDoesNotRendezvous pins the property the sharded flush
// relies on: a write smaller than the ring returns without a concurrent
// reader.
func TestBufConnWriteDoesNotRendezvous(t *testing.T) {
	a, b := newBufConnPair(1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := a.Write(make([]byte, 512)); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("buffered write blocked without a reader")
	}
	got, err := io.ReadAll(io.LimitReader(b, 512))
	if err != nil || len(got) != 512 {
		t.Fatalf("read %d bytes, err %v", len(got), err)
	}
}

// TestBufConnBackpressure pins that writes beyond the ring capacity block
// until the reader drains, then complete.
func TestBufConnBackpressure(t *testing.T) {
	a, b := newBufConnPair(16)
	wrote := make(chan error, 1)
	go func() {
		_, err := a.Write(make([]byte, 64))
		wrote <- err
	}()
	select {
	case err := <-wrote:
		t.Fatalf("oversized write returned early (err %v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := io.ReadFull(b, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := <-wrote; err != nil {
		t.Fatal(err)
	}
}

// TestBufConnWrapAround pushes several ring lengths of data through a tiny
// ring to exercise start/wrap arithmetic.
func TestBufConnWrapAround(t *testing.T) {
	a, b := newBufConnPair(7)
	const total = 1000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if _, err := a.Write([]byte{byte(i), byte(i >> 8)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	buf := make([]byte, 2)
	for i := 0; i < total; i++ {
		if _, err := io.ReadFull(b, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) || buf[1] != byte(i>>8) {
			t.Fatalf("frame %d corrupted: % x", i, buf)
		}
	}
	wg.Wait()
}

func TestBufConnCloseSemantics(t *testing.T) {
	a, b := newBufConnPair(64)
	if _, err := a.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	_ = a.Close()
	// Peer drains buffered bytes, then sees EOF.
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "tail" {
		t.Fatalf("drained %q", got)
	}
	// Writing toward the closed endpoint fails.
	if _, err := b.Write([]byte("x")); err == nil {
		t.Fatal("write to closed peer succeeded")
	}
	// Our own reads after Close fail too.
	if _, err := a.Read(make([]byte, 1)); err == nil {
		t.Fatal("read after close succeeded")
	}
}

// TestBufferedMemTransport runs the listener/dial path over buffered pairs.
func TestBufferedMemTransport(t *testing.T) {
	tr := NewBufferedMemTransport(256)
	ln, err := tr.Listen("ctl:a")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			accepted <- err
			return
		}
		buf := make([]byte, 4)
		if _, err := io.ReadFull(c, buf); err != nil {
			accepted <- err
			return
		}
		_, err = c.Write(bytes.ToUpper(buf))
		accepted <- err
	}()
	c, err := tr.Dial("ctl:a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "PING" {
		t.Fatalf("got %q", buf)
	}
	if err := <-accepted; err != nil {
		t.Fatal(err)
	}
}
