package netem

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"attain/internal/clock"
)

// TestLinkFabricScaleStress drives hundreds of concurrent links — the
// fabric-runtime shape — and verifies frame accounting, teardown, and
// goroutine hygiene: after Close on every link, the process returns to its
// pre-test goroutine count (no leaked serializer/propagator goroutines,
// no stuck receivers).
func TestLinkFabricScaleStress(t *testing.T) {
	const (
		links          = 300
		framesPerLink  = 20
		sendersPerLink = 2
	)
	clk := clock.New()
	before := runtime.NumGoroutine()

	var delivered atomic.Uint64
	all := make([]*Link, links)
	for i := range all {
		all[i] = NewLink(clk, LinkConfig{QueueLen: 64, LossSeed: int64(i + 1)})
		all[i].A().SetReceiver(func([]byte) { delivered.Add(1) })
		all[i].B().SetReceiver(func([]byte) { delivered.Add(1) })
	}

	var wg sync.WaitGroup
	frame := []byte("stress-frame")
	for _, l := range all {
		for s := 0; s < sendersPerLink; s++ {
			wg.Add(2)
			go func(p *Port) {
				defer wg.Done()
				for f := 0; f < framesPerLink; f++ {
					p.Send(frame)
				}
			}(l.A())
			go func(p *Port) {
				defer wg.Done()
				for f := 0; f < framesPerLink; f++ {
					p.Send(frame)
				}
			}(l.B())
		}
	}
	wg.Wait()

	// Drain: every enqueued frame must eventually be delivered (zero-loss,
	// zero-latency config; queues were large enough that drops only happen
	// under pathological scheduling, which the accounting below tolerates).
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var enq, dropped uint64
		for _, l := range all {
			sa, sb := l.StatsA2B(), l.StatsB2A()
			enq += sa.Enqueued + sb.Enqueued
			dropped += sa.Dropped + sb.Dropped
		}
		if delivered.Load() == enq {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	var enq, dropped uint64
	for _, l := range all {
		sa, sb := l.StatsA2B(), l.StatsB2A()
		enq += sa.Enqueued + sb.Enqueued
		dropped += sa.Dropped + sb.Dropped
	}
	if enq+dropped != links*framesPerLink*sendersPerLink*2 {
		t.Fatalf("accounting: enqueued %d + dropped %d != sent %d",
			enq, dropped, links*framesPerLink*sendersPerLink*2)
	}
	if delivered.Load() != enq {
		t.Fatalf("delivered %d != enqueued %d after drain", delivered.Load(), enq)
	}

	for _, l := range all {
		l.Close()
	}
	// Close is synchronous per link, but receiver callbacks finishing and
	// runtime bookkeeping can lag; poll for the goroutine count to settle.
	waitGoroutines(t, before)
}

// TestLinkIdleCostsNoGoroutines pins the lazy-start contract the fabric
// runtime depends on: instantiating links spawns nothing until traffic
// flows.
func TestLinkIdleCostsNoGoroutines(t *testing.T) {
	clk := clock.New()
	before := runtime.NumGoroutine()
	all := make([]*Link, 500)
	for i := range all {
		all[i] = NewLink(clk, LinkConfig{})
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("idle links spawned goroutines: %d -> %d", before, after)
	}
	// Close before first use must not hang.
	done := make(chan struct{})
	go func() {
		for _, l := range all {
			l.Close()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on never-used links")
	}
	// A closed, never-started link drops frames instead of starting.
	l := NewLink(clk, LinkConfig{})
	l.Close()
	l.A().Send([]byte("late"))
	if st := l.StatsA2B(); st.Dropped != 1 || st.Enqueued != 0 {
		t.Fatalf("send after close: stats %+v, want 1 drop", st)
	}
	waitGoroutines(t, before)
}

// TestMemTransportConcurrentSessions exercises the in-memory transport
// with hundreds of concurrent dial/accept/serve/close cycles, the
// control-plane shape of a large fabric, and checks the listener table
// empties on teardown.
func TestMemTransportConcurrentSessions(t *testing.T) {
	tr := NewMemTransport()
	before := runtime.NumGoroutine()

	ln, err := tr.Listen("ctrl")
	if err != nil {
		t.Fatal(err)
	}
	var served sync.WaitGroup
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			served.Add(1)
			go func(c net.Conn) {
				defer served.Done()
				defer c.Close()
				buf := make([]byte, 8)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}(c)
		}
	}()

	const dialers = 300
	var wg sync.WaitGroup
	errs := make(chan error, dialers)
	for i := 0; i < dialers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := tr.Dial("ctrl")
			if err != nil {
				errs <- fmt.Errorf("dial %d: %w", i, err)
				return
			}
			defer c.Close()
			msg := []byte("ping")
			if _, err := c.Write(msg); err != nil {
				errs <- fmt.Errorf("write %d: %w", i, err)
				return
			}
			buf := make([]byte, len(msg))
			if _, err := c.Read(buf); err != nil {
				errs <- fmt.Errorf("read %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	ln.Close()
	served.Wait()
	tr.mu.Lock()
	n := len(tr.listeners)
	tr.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d listeners leaked after Close", n)
	}
	if _, err := tr.Dial("ctrl"); err == nil {
		t.Fatal("Dial succeeded after listener Close")
	}
	waitGoroutines(t, before)
}

// waitGoroutines polls until the goroutine count returns to within a small
// slack of base (the runtime occasionally keeps helpers alive briefly).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+3 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: base %d, now %d\n%s", base, runtime.NumGoroutine(), buf[:n])
}
