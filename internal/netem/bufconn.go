package netem

import (
	"io"
	"net"
	"sync"
	"time"
)

// DefaultBufConnSize is the per-direction ring capacity of buffered
// in-memory connections: large enough that a batched flush of a full
// injector shard never rendezvous-blocks on a prompt reader.
const DefaultBufConnSize = 64 << 10

// bufRing is one direction of a buffered in-memory connection: a
// fixed-capacity byte ring guarded by a mutex with reader/writer conds.
// Unlike net.Pipe there is no rendezvous — Write returns as soon as the
// bytes are buffered, so a batching writer (the injector's sharded flush)
// is decoupled from its reader's pace up to the ring capacity.
type bufRing struct {
	mu     sync.Mutex
	rd, wr *sync.Cond
	buf    []byte
	start  int  // read position
	n      int  // bytes buffered
	closed bool // no further writes; reads drain then EOF
	rdGone bool // reader side closed; writes fail immediately
}

func newBufRing(size int) *bufRing {
	r := &bufRing{buf: make([]byte, size)}
	r.rd = sync.NewCond(&r.mu)
	r.wr = sync.NewCond(&r.mu)
	return r
}

// write appends p, blocking while the ring is full. It returns early with
// io.ErrClosedPipe once either side closes.
func (r *bufRing) write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	written := 0
	for len(p) > 0 {
		if r.closed || r.rdGone {
			return written, io.ErrClosedPipe
		}
		free := len(r.buf) - r.n
		if free == 0 {
			r.wr.Wait()
			continue
		}
		chunk := len(p)
		if chunk > free {
			chunk = free
		}
		pos := (r.start + r.n) % len(r.buf)
		c := copy(r.buf[pos:], p[:chunk])
		if c < chunk {
			copy(r.buf, p[c:chunk])
		}
		r.n += chunk
		written += chunk
		p = p[chunk:]
		r.rd.Signal()
	}
	return written, nil
}

// read fills p with up to n buffered bytes, blocking while empty.
func (r *bufRing) read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.n == 0 {
		if r.closed || r.rdGone {
			return 0, io.EOF
		}
		r.rd.Wait()
	}
	chunk := len(p)
	if chunk > r.n {
		chunk = r.n
	}
	c := copy(p, r.buf[r.start:min(r.start+chunk, len(r.buf))])
	if c < chunk {
		copy(p[c:], r.buf[:chunk-c])
	}
	r.start = (r.start + chunk) % len(r.buf)
	r.n -= chunk
	r.wr.Signal()
	return chunk, nil
}

// closeWrite marks the writer side done: pending bytes stay readable, then
// readers see EOF.
func (r *bufRing) closeWrite() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.rd.Broadcast()
	r.wr.Broadcast()
}

// closeRead abandons the reader side: buffered bytes are discarded and
// writers fail immediately.
func (r *bufRing) closeRead() {
	r.mu.Lock()
	r.rdGone = true
	r.n = 0
	r.mu.Unlock()
	r.rd.Broadcast()
	r.wr.Broadcast()
}

// bufConn is one endpoint of a buffered in-memory connection pair.
type bufConn struct {
	in, out   *bufRing // in: peer->us, out: us->peer
	closeOnce sync.Once
	local     string
}

var _ net.Conn = (*bufConn)(nil)

// newBufConnPair returns two connected endpoints, each direction buffered
// with size bytes.
func newBufConnPair(size int) (net.Conn, net.Conn) {
	if size <= 0 {
		size = DefaultBufConnSize
	}
	ab := newBufRing(size)
	ba := newBufRing(size)
	a := &bufConn{in: ba, out: ab, local: "bufconn:a"}
	b := &bufConn{in: ab, out: ba, local: "bufconn:b"}
	return a, b
}

func (c *bufConn) Read(p []byte) (int, error)  { return c.in.read(p) }
func (c *bufConn) Write(p []byte) (int, error) { return c.out.write(p) }

// Close tears down both directions: our writes end (peer drains then sees
// EOF) and our reads are abandoned (peer writes fail).
func (c *bufConn) Close() error {
	c.closeOnce.Do(func() {
		c.out.closeWrite()
		c.in.closeRead()
	})
	return nil
}

func (c *bufConn) LocalAddr() net.Addr  { return memAddr(c.local) }
func (c *bufConn) RemoteAddr() net.Addr { return memAddr(c.local) }

// Deadlines are not implemented: the transports' users (injector pumps,
// switch and controller framers) use blocking reads terminated by Close.
func (c *bufConn) SetDeadline(time.Time) error      { return nil }
func (c *bufConn) SetReadDeadline(time.Time) error  { return nil }
func (c *bufConn) SetWriteDeadline(time.Time) error { return nil }
