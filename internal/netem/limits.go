package netem

import (
	"errors"
	"syscall"
)

// IsFDExhausted reports whether err indicates the process or system ran
// out of file descriptors (EMFILE/ENFILE) — the failure mode of TCP
// transports at fabric scale. Large fabrics check dial errors with this
// to fail bring-up fast with a clear message (switch to the in-memory
// transport or raise ulimit -n) instead of silently retrying a connect
// loop that can never succeed.
func IsFDExhausted(err error) bool {
	return errors.Is(err, syscall.EMFILE) || errors.Is(err, syscall.ENFILE)
}
