package monitor

import (
	"math"
	"testing"
	"time"

	"attain/internal/dataplane"
)

// Edge cases for the summary statistics that feed the paper's Figure 11 /
// Table II aggregates: empty samples, single-sample percentiles, zero-trial
// reports, and the all-lost / all-zero degenerate outcomes.

func TestSummarizeEmptySample(t *testing.T) {
	for _, sample := range [][]float64{nil, {}} {
		if got := Summarize(sample); got != (Summary{}) {
			t.Errorf("Summarize(%v) = %+v, want zero Summary", sample, got)
		}
	}
}

func TestSummarizeSingleSample(t *testing.T) {
	got := Summarize([]float64{42.5})
	want := Summary{N: 1, Min: 42.5, Max: 42.5, Mean: 42.5, Median: 42.5, P95: 42.5}
	if got != want {
		t.Errorf("Summarize single = %+v, want %+v", got, want)
	}
}

func TestSummarizeTwoSamplePercentiles(t *testing.T) {
	got := Summarize([]float64{3, 1})
	if got.N != 2 || got.Min != 1 || got.Max != 3 || got.Mean != 2 {
		t.Errorf("basic stats = %+v", got)
	}
	if got.Median != 2 {
		t.Errorf("Median = %v, want 2 (interpolated)", got.Median)
	}
	// P95 over [1, 3] interpolates at index 0.95: 1*0.05 + 3*0.95.
	if math.Abs(got.P95-2.9) > 1e-9 {
		t.Errorf("P95 = %v, want 2.9", got.P95)
	}
	if got.StdDev != 1 {
		t.Errorf("StdDev = %v, want 1 (population)", got.StdDev)
	}
}

func TestSummarizeDoesNotMutateSample(t *testing.T) {
	sample := []float64{3, 1, 2}
	Summarize(sample)
	if sample[0] != 3 || sample[1] != 1 || sample[2] != 2 {
		t.Errorf("Summarize reordered its input: %v", sample)
	}
}

func TestPingReportZeroTrials(t *testing.T) {
	var r PingReport
	if r.Sent() != 0 || r.Received() != 0 {
		t.Errorf("Sent/Received = %d/%d, want 0/0", r.Sent(), r.Received())
	}
	// No trials means no evidence of loss, not 100% loss (and not NaN).
	if got := r.LossPct(); got != 0 {
		t.Errorf("LossPct = %v, want 0", got)
	}
	if r.AllLost() {
		t.Error("AllLost with zero trials, want false")
	}
	if rtts := r.RTTs(); len(rtts) != 0 {
		t.Errorf("RTTs = %v, want empty", rtts)
	}
	if got := r.LatencySummary(); got != (Summary{}) {
		t.Errorf("LatencySummary = %+v, want zero Summary", got)
	}
}

func TestPingReportAllLost(t *testing.T) {
	r := PingReport{Trials: []PingTrial{{Seq: 1}, {Seq: 2}, {Seq: 3}}}
	if !r.AllLost() {
		t.Error("AllLost = false with every trial timed out")
	}
	if got := r.LossPct(); got != 100 {
		t.Errorf("LossPct = %v, want 100", got)
	}
	// The latency summary of an all-lost run must stay zero, not NaN.
	if got := r.LatencySummary(); got != (Summary{}) {
		t.Errorf("LatencySummary = %+v, want zero Summary", got)
	}
}

func TestPingReportPartialLoss(t *testing.T) {
	r := PingReport{Trials: []PingTrial{
		{Seq: 1, OK: true, RTT: 10 * time.Millisecond},
		{Seq: 2},
		{Seq: 3, OK: true, RTT: 30 * time.Millisecond},
		{Seq: 4},
	}}
	if r.AllLost() {
		t.Error("AllLost = true with surviving trials")
	}
	if got := r.LossPct(); got != 50 {
		t.Errorf("LossPct = %v, want 50", got)
	}
	sum := r.LatencySummary()
	if sum.N != 2 || sum.Mean != 20 {
		t.Errorf("LatencySummary = %+v, want N=2 Mean=20ms", sum)
	}
}

func TestIperfReportZeroTrials(t *testing.T) {
	var r IperfReport
	// An empty report carries no evidence of a DoS: AllZero must be false.
	if r.AllZero() {
		t.Error("AllZero with zero trials, want false")
	}
	if got := r.ThroughputSummary(); got != (Summary{}) {
		t.Errorf("ThroughputSummary = %+v, want zero Summary", got)
	}
}

func TestIperfReportAllZero(t *testing.T) {
	r := IperfReport{Trials: []dataplane.IperfResult{
		{Connected: false},
		{Connected: true, Elapsed: time.Second},
	}}
	if !r.AllZero() {
		t.Error("AllZero = false with no bytes acked in any trial")
	}
	// Failed trials still contribute zero-valued samples.
	sum := r.ThroughputSummary()
	if sum.N != 2 || sum.Mean != 0 || sum.Max != 0 {
		t.Errorf("ThroughputSummary = %+v, want two zero samples", sum)
	}

	r.Trials = append(r.Trials, dataplane.IperfResult{
		Connected: true, BytesAcked: 1 << 20, Elapsed: time.Second,
	})
	if r.AllZero() {
		t.Error("AllZero = true after a trial moved data")
	}
}
