package monitor

import (
	"errors"
	"math"
	"testing"
	"time"

	"attain/internal/clock"
	"attain/internal/dataplane"
	"attain/internal/netaddr"
)

var (
	macA = netaddr.MustParseMAC("0a:00:00:00:00:01")
	macB = netaddr.MustParseMAC("0a:00:00:00:00:02")
	ipA  = netaddr.MustParseIPv4("10.0.0.1")
	ipB  = netaddr.MustParseIPv4("10.0.0.2")
)

func hostPair() (*dataplane.Host, *dataplane.Host) {
	clk := clock.New()
	a := dataplane.NewHost("hA", macA, ipA, clk)
	b := dataplane.NewHost("hB", macB, ipB, clk)
	a.AttachOutput(b.Input)
	b.AttachOutput(a.Input)
	return a, b
}

func TestRunPingCollectsTrials(t *testing.T) {
	a, _ := hostPair()
	report := RunPing(clock.New(), a, ipB, PingConfig{
		Trials: 5, Interval: 5 * time.Millisecond, Timeout: 100 * time.Millisecond,
	})
	if report.Sent() != 5 || report.Received() != 5 {
		t.Fatalf("sent %d received %d", report.Sent(), report.Received())
	}
	if report.LossPct() != 0 {
		t.Errorf("loss = %v", report.LossPct())
	}
	if report.AllLost() {
		t.Error("AllLost on successful run")
	}
	if len(report.RTTs()) != 5 {
		t.Errorf("RTTs = %v", report.RTTs())
	}
}

func TestRunPingBlackHole(t *testing.T) {
	clk := clock.New()
	a := dataplane.NewHost("hA", macA, ipA, clk)
	a.ARPTimeout = 5 * time.Millisecond
	a.AttachOutput(func([]byte) {})
	report := RunPing(clk, a, ipB, PingConfig{
		Trials: 3, Interval: time.Millisecond, Timeout: 5 * time.Millisecond,
	})
	if !report.AllLost() {
		t.Errorf("report = %+v, want all lost", report)
	}
	if report.LossPct() != 100 {
		t.Errorf("loss = %v", report.LossPct())
	}
}

func TestRunIperfCollectsTrials(t *testing.T) {
	a, b := hostPair()
	srv := dataplane.NewIperfServer(b, dataplane.IperfPort)
	defer srv.Close()
	report := RunIperf(clock.New(), a, ipB, dataplane.IperfPort, IperfMonitorConfig{
		Trials: 3, Duration: 30 * time.Millisecond, Gap: time.Millisecond,
		Client: dataplane.IperfConfig{SegmentSize: 512, Window: 4, RTO: 10 * time.Millisecond},
	})
	if len(report.Trials) != 3 {
		t.Fatalf("trials = %d", len(report.Trials))
	}
	if report.AllZero() {
		t.Error("no data moved")
	}
	for i, mbps := range report.Throughputs() {
		if mbps <= 0 {
			t.Errorf("trial %d throughput = %v", i, mbps)
		}
	}
}

func TestRunIperfConnectFailureIsZeroTrial(t *testing.T) {
	clk := clock.New()
	a := dataplane.NewHost("hA", macA, ipA, clk)
	a.ARPTimeout = 5 * time.Millisecond
	a.AttachOutput(func([]byte) {})
	report := RunIperf(clk, a, ipB, dataplane.IperfPort, IperfMonitorConfig{
		Trials: 2, Duration: 10 * time.Millisecond, Gap: time.Millisecond,
		Client: dataplane.IperfConfig{ConnectTimeout: 5 * time.Millisecond, ConnectRetries: 1},
	})
	if !report.AllZero() {
		t.Errorf("report = %+v, want all zero", report)
	}
}

func TestCheckAccess(t *testing.T) {
	a, b := hostPair()
	clk := clock.New()
	if !CheckAccess(clk, a, ipB, 3, 50*time.Millisecond) {
		t.Error("reachable host reported unreachable")
	}
	b.AttachOutput(func([]byte) {})
	a2 := dataplane.NewHost("hA2", netaddr.MustParseMAC("0a:00:00:00:00:03"), netaddr.MustParseIPv4("10.0.0.3"), clk)
	a2.ARPTimeout = 5 * time.Millisecond
	a2.AttachOutput(func([]byte) {})
	if CheckAccess(clk, a2, ipB, 2, 5*time.Millisecond) {
		t.Error("unreachable host reported reachable")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Errorf("stddev = %v", s.StdDev)
	}
	if s.P95 < 4.5 || s.P95 > 5 {
		t.Errorf("p95 = %v", s.P95)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestDurationsToMillis(t *testing.T) {
	out := DurationsToMillis([]time.Duration{time.Millisecond * 2, time.Second})
	if out[0] != 2 || out[1] != 1000 {
		t.Errorf("out = %v", out)
	}
}

func TestCommandRegistry(t *testing.T) {
	reg := NewCommandRegistry()
	ran := false
	reg.Register("h1", "iperf -s", func() error {
		ran = true
		return nil
	})
	runner := reg.Runner("h1")
	if err := runner("iperf -s"); err != nil || !ran {
		t.Errorf("run = %v, ran = %v", err, ran)
	}
	if err := runner("unknown"); err == nil {
		t.Error("unknown command accepted")
	}
	if err := reg.Runner("h2")("iperf -s"); err == nil {
		t.Error("command on wrong host accepted")
	}
	log := reg.Executed()
	if len(log) != 3 {
		t.Errorf("log = %v", log)
	}
}

func TestRegistryErrorsPropagate(t *testing.T) {
	reg := NewCommandRegistry()
	sentinel := errors.New("boom")
	reg.Register("h1", "x", func() error { return sentinel })
	if err := reg.Runner("h1")("x"); !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}
