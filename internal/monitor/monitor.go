// Package monitor implements the testing-framework monitors of the ATTAIN
// paper (§VI-B3): ping and iperf workload drivers that record per-trial
// security and performance metrics, summary statistics, and a command
// registry so SYSCMD actions in attack descriptions can actuate monitors on
// hosts.
package monitor

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"attain/internal/clock"
	"attain/internal/dataplane"
	"attain/internal/netaddr"
)

// PingTrial is one ICMP echo trial.
type PingTrial struct {
	Seq int
	// OK reports whether the reply arrived within the timeout.
	OK bool
	// RTT is valid only when OK.
	RTT time.Duration
}

// PingReport aggregates ping trials between one host pair.
type PingReport struct {
	From, To string
	Trials   []PingTrial
}

// Sent returns the number of trials.
func (r PingReport) Sent() int { return len(r.Trials) }

// Received returns the number of successful trials.
func (r PingReport) Received() int {
	n := 0
	for _, tr := range r.Trials {
		if tr.OK {
			n++
		}
	}
	return n
}

// LossPct returns the percentage of lost trials.
func (r PingReport) LossPct() float64 {
	if len(r.Trials) == 0 {
		return 0
	}
	return 100 * float64(r.Sent()-r.Received()) / float64(r.Sent())
}

// RTTs returns the successful round-trip times.
func (r PingReport) RTTs() []time.Duration {
	var out []time.Duration
	for _, tr := range r.Trials {
		if tr.OK {
			out = append(out, tr.RTT)
		}
	}
	return out
}

// AllLost reports whether every trial timed out — the paper's "latency is
// infinite" outcome (the asterisk in Figure 11).
func (r PingReport) AllLost() bool { return len(r.Trials) > 0 && r.Received() == 0 }

// LatencySummary summarizes the successful round-trip times in
// milliseconds.
func (r PingReport) LatencySummary() Summary {
	return Summarize(DurationsToMillis(r.RTTs()))
}

// PingConfig parameterizes a ping monitor run.
type PingConfig struct {
	// Trials is the number of echo requests (paper: 60).
	Trials int
	// Interval separates trial starts (paper: ~1 s).
	Interval time.Duration
	// Timeout bounds each trial's wait for a reply.
	Timeout time.Duration
}

func (c *PingConfig) setDefaults() {
	if c.Trials <= 0 {
		c.Trials = 60
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval
	}
}

// RunPing executes ping trials from host to dst, pacing them with clk.
func RunPing(clk clock.Clock, host *dataplane.Host, dst netaddr.IPv4, cfg PingConfig) PingReport {
	cfg.setDefaults()
	report := PingReport{From: host.Name(), To: dst.String()}
	for i := 0; i < cfg.Trials; i++ {
		start := clk.Now()
		rtt, err := host.Ping(dst, cfg.Timeout)
		report.Trials = append(report.Trials, PingTrial{Seq: i + 1, OK: err == nil, RTT: rtt})
		// Keep the trial cadence: wait out the remainder of the interval.
		if rest := cfg.Interval - clk.Now().Sub(start); rest > 0 {
			clk.Sleep(rest)
		}
	}
	return report
}

// IperfReport aggregates iperf trials between one host pair.
type IperfReport struct {
	From, To string
	Trials   []dataplane.IperfResult
}

// Throughputs returns the per-trial goodputs in Mbps (failed connections
// contribute 0).
func (r IperfReport) Throughputs() []float64 {
	out := make([]float64, len(r.Trials))
	for i, tr := range r.Trials {
		out[i] = tr.ThroughputMbps()
	}
	return out
}

// ThroughputSummary summarizes the per-trial goodputs in Mbps.
func (r IperfReport) ThroughputSummary() Summary {
	return Summarize(r.Throughputs())
}

// AllZero reports whether no trial moved any data — the paper's
// "throughput is zero" outcome.
func (r IperfReport) AllZero() bool {
	if len(r.Trials) == 0 {
		return false
	}
	for _, tr := range r.Trials {
		if tr.BytesAcked > 0 {
			return false
		}
	}
	return true
}

// IperfMonitorConfig parameterizes an iperf monitor run.
type IperfMonitorConfig struct {
	// Trials is the number of client runs (paper: 30).
	Trials int
	// Duration is each trial's transfer time (paper: 10 s).
	Duration time.Duration
	// Gap separates trials (paper: 10 s).
	Gap time.Duration
	// Client tunes the transfer itself.
	Client dataplane.IperfConfig
}

func (c *IperfMonitorConfig) setDefaults() {
	if c.Trials <= 0 {
		c.Trials = 30
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Gap <= 0 {
		c.Gap = 10 * time.Second
	}
}

// RunIperf executes iperf trials from client toward a server already
// listening on serverIP.
func RunIperf(clk clock.Clock, client *dataplane.Host, serverIP netaddr.IPv4, port uint16, cfg IperfMonitorConfig) IperfReport {
	cfg.setDefaults()
	report := IperfReport{From: client.Name(), To: serverIP.String()}
	for i := 0; i < cfg.Trials; i++ {
		res, err := dataplane.RunIperfClient(client, serverIP, port, cfg.Duration, cfg.Client)
		if err != nil {
			res = dataplane.IperfResult{} // connection failure: zero trial
		}
		report.Trials = append(report.Trials, res)
		if i < cfg.Trials-1 {
			clk.Sleep(cfg.Gap)
		}
	}
	return report
}

// CheckAccess performs the Table II access test: it reports whether from
// can reach to at all within the window (any successful ping out of
// attempts).
func CheckAccess(clk clock.Clock, from *dataplane.Host, to netaddr.IPv4, attempts int, interval time.Duration) bool {
	if attempts <= 0 {
		attempts = 5
	}
	if interval <= 0 {
		interval = time.Second
	}
	for i := 0; i < attempts; i++ {
		if _, err := from.Ping(to, interval); err == nil {
			return true
		}
		clk.Sleep(interval / 4)
	}
	return false
}

// Summary holds order statistics over a sample.
type Summary struct {
	N                 int
	Min, Max          float64
	Mean, Median, P95 float64
	StdDev            float64
}

// Summarize computes order statistics. An empty sample yields a zero
// Summary.
func Summarize(sample []float64) Summary {
	if len(sample) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	mean := sum / float64(len(sorted))
	var variance float64
	for _, v := range sorted {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(sorted))
	percentile := func(p float64) float64 {
		idx := p * float64(len(sorted)-1)
		lo := int(math.Floor(idx))
		hi := int(math.Ceil(idx))
		if lo == hi {
			return sorted[lo]
		}
		frac := idx - float64(lo)
		return sorted[lo]*(1-frac) + sorted[hi]*frac
	}
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		Median: percentile(0.5),
		P95:    percentile(0.95),
		StdDev: math.Sqrt(variance),
	}
}

// DurationsToMillis converts durations to float milliseconds.
func DurationsToMillis(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d) / float64(time.Millisecond)
	}
	return out
}

// CommandRegistry binds SYSCMD(host, cmd) actions to Go closures, playing
// the role of remote shell execution on monitored hosts.
type CommandRegistry struct {
	mu   sync.Mutex
	cmds map[string]func() error
	log  []string
}

// NewCommandRegistry returns an empty registry.
func NewCommandRegistry() *CommandRegistry {
	return &CommandRegistry{cmds: make(map[string]func() error)}
}

// Register binds the exact command string cmd on host to fn.
func (r *CommandRegistry) Register(host, cmd string, fn func() error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cmds[host+"\x00"+cmd] = fn
}

// Runner returns the dispatch function for one host, suitable for
// Injector.RegisterSysCmd.
func (r *CommandRegistry) Runner(host string) func(cmd string) error {
	return func(cmd string) error {
		r.mu.Lock()
		fn := r.cmds[host+"\x00"+cmd]
		r.log = append(r.log, fmt.Sprintf("%s: %s", host, cmd))
		r.mu.Unlock()
		if fn == nil {
			return fmt.Errorf("monitor: no command %q registered on host %s", cmd, host)
		}
		return fn()
	}
}

// Executed returns the dispatch log.
func (r *CommandRegistry) Executed() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.log...)
}
