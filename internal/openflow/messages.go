package openflow

import "fmt"

// Hello is exchanged at connection setup to negotiate the protocol version.
type Hello struct{}

// EchoRequest is a liveness probe; the peer must answer with an EchoReply
// carrying the same payload.
type EchoRequest struct{ Data []byte }

// EchoReply answers an EchoRequest.
type EchoReply struct{ Data []byte }

// Vendor is an opaque vendor/experimenter message.
type Vendor struct {
	VendorID uint32
	Data     []byte
}

// Error message types (ofp_error_type).
const (
	ErrTypeHelloFailed   uint16 = 0
	ErrTypeBadRequest    uint16 = 1
	ErrTypeBadAction     uint16 = 2
	ErrTypeFlowModFailed uint16 = 3
	ErrTypePortModFailed uint16 = 4
	ErrTypeQueueOpFailed uint16 = 5
)

// Selected error codes.
const (
	ErrCodeBadRequestBadType       uint16 = 1
	ErrCodeBadRequestBadStat       uint16 = 2
	ErrCodeBadRequestBufferUnknown uint16 = 8
	ErrCodeFlowModAllTablesFull    uint16 = 0
	ErrCodeFlowModOverlap          uint16 = 1
	ErrCodeFlowModUnsupported      uint16 = 5
	ErrCodeFlowModBadCommand       uint16 = 3
	ErrCodeFlowModBadEmergTimeout  uint16 = 4
)

// ErrorMsg reports a protocol error; Data carries at least 64 bytes of the
// offending message.
type ErrorMsg struct {
	ErrType uint16
	Code    uint16
	Data    []byte
}

// Error implements the error interface so an ErrorMsg can be returned
// directly where convenient.
func (m *ErrorMsg) Error() string {
	return fmt.Sprintf("openflow error type=%d code=%d", m.ErrType, m.Code)
}

// FeaturesRequest asks the switch for its datapath features.
type FeaturesRequest struct{}

// Switch capability flags (ofp_capabilities).
const (
	CapabilityFlowStats  uint32 = 1 << 0
	CapabilityTableStats uint32 = 1 << 1
	CapabilityPortStats  uint32 = 1 << 2
	CapabilitySTP        uint32 = 1 << 3
	CapabilityIPReasm    uint32 = 1 << 5
	CapabilityQueueStats uint32 = 1 << 6
	CapabilityARPMatchIP uint32 = 1 << 7
)

// FeaturesReply describes the switch datapath (ofp_switch_features).
type FeaturesReply struct {
	DatapathID   uint64
	NBuffers     uint32
	NTables      uint8
	Capabilities uint32
	Actions      uint32
	Ports        []PhyPort
}

// GetConfigRequest asks for the switch configuration.
type GetConfigRequest struct{}

// Switch config flags (ofp_config_flags, fragment handling).
const (
	ConfigFragNormal uint16 = 0
	ConfigFragDrop   uint16 = 1
	ConfigFragReasm  uint16 = 2
)

// GetConfigReply carries the switch configuration.
type GetConfigReply struct {
	Flags       uint16
	MissSendLen uint16
}

// SetConfig sets the switch configuration.
type SetConfig struct {
	Flags       uint16
	MissSendLen uint16
}

// BarrierRequest asks the switch to finish processing all prior messages
// before replying.
type BarrierRequest struct{}

// BarrierReply answers a BarrierRequest.
type BarrierReply struct{}

// QueueGetConfigRequest asks for the queues configured on a port.
type QueueGetConfigRequest struct{ Port uint16 }

// QueueGetConfigReply lists the queues on a port. Queue property parsing is
// not modelled; the simulator has no QoS queues.
type QueueGetConfigReply struct{ Port uint16 }

// Type implementations.
func (*Hello) Type() Type                 { return TypeHello }
func (*EchoRequest) Type() Type           { return TypeEchoRequest }
func (*EchoReply) Type() Type             { return TypeEchoReply }
func (*Vendor) Type() Type                { return TypeVendor }
func (*ErrorMsg) Type() Type              { return TypeError }
func (*FeaturesRequest) Type() Type       { return TypeFeaturesRequest }
func (*FeaturesReply) Type() Type         { return TypeFeaturesReply }
func (*GetConfigRequest) Type() Type      { return TypeGetConfigRequest }
func (*GetConfigReply) Type() Type        { return TypeGetConfigReply }
func (*SetConfig) Type() Type             { return TypeSetConfig }
func (*BarrierRequest) Type() Type        { return TypeBarrierRequest }
func (*BarrierReply) Type() Type          { return TypeBarrierReply }
func (*QueueGetConfigRequest) Type() Type { return TypeQueueGetConfigRequest }
func (*QueueGetConfigReply) Type() Type   { return TypeQueueGetConfigReply }

func (*Hello) marshalBody(b []byte) ([]byte, error) { return b, nil }
func (*Hello) unmarshalBody(data []byte) error      { return nil }

func (m *EchoRequest) marshalBody(b []byte) ([]byte, error) { return append(b, m.Data...), nil }
func (m *EchoRequest) unmarshalBody(data []byte) error {
	m.Data = append([]byte(nil), data...)
	return nil
}

func (m *EchoReply) marshalBody(b []byte) ([]byte, error) { return append(b, m.Data...), nil }
func (m *EchoReply) unmarshalBody(data []byte) error {
	m.Data = append([]byte(nil), data...)
	return nil
}

func (m *Vendor) marshalBody(b []byte) ([]byte, error) {
	w := writer{b: b}
	w.u32(m.VendorID)
	w.bytes(m.Data)
	return w.b, nil
}

func (m *Vendor) unmarshalBody(data []byte) error {
	r := reader{b: data}
	m.VendorID = r.u32()
	m.Data = r.rest()
	return r.err
}

func (m *ErrorMsg) marshalBody(b []byte) ([]byte, error) {
	w := writer{b: b}
	w.u16(m.ErrType)
	w.u16(m.Code)
	w.bytes(m.Data)
	return w.b, nil
}

func (m *ErrorMsg) unmarshalBody(data []byte) error {
	r := reader{b: data}
	m.ErrType = r.u16()
	m.Code = r.u16()
	m.Data = r.rest()
	return r.err
}

func (*FeaturesRequest) marshalBody(b []byte) ([]byte, error) { return b, nil }
func (*FeaturesRequest) unmarshalBody(data []byte) error      { return nil }

func (m *FeaturesReply) marshalBody(b []byte) ([]byte, error) {
	w := writer{b: b}
	w.u64(m.DatapathID)
	w.u32(m.NBuffers)
	w.u8(m.NTables)
	w.pad(3)
	w.u32(m.Capabilities)
	w.u32(m.Actions)
	for _, p := range m.Ports {
		p.marshal(&w)
	}
	return w.b, nil
}

func (m *FeaturesReply) unmarshalBody(data []byte) error {
	r := reader{b: data}
	m.DatapathID = r.u64()
	m.NBuffers = r.u32()
	m.NTables = r.u8()
	r.skip(3)
	m.Capabilities = r.u32()
	m.Actions = r.u32()
	if r.err != nil {
		return r.err
	}
	if r.remaining()%phyPortLen != 0 {
		return ErrBadLength
	}
	if n := r.remaining() / phyPortLen; n > 0 {
		m.Ports = make([]PhyPort, 0, n)
	}
	for r.remaining() > 0 {
		var p PhyPort
		p.unmarshal(&r)
		m.Ports = append(m.Ports, p)
	}
	return r.err
}

func (*GetConfigRequest) marshalBody(b []byte) ([]byte, error) { return b, nil }
func (*GetConfigRequest) unmarshalBody(data []byte) error      { return nil }

func (m *GetConfigReply) marshalBody(b []byte) ([]byte, error) {
	w := writer{b: b}
	w.u16(m.Flags)
	w.u16(m.MissSendLen)
	return w.b, nil
}

func (m *GetConfigReply) unmarshalBody(data []byte) error {
	r := reader{b: data}
	m.Flags = r.u16()
	m.MissSendLen = r.u16()
	return r.err
}

func (m *SetConfig) marshalBody(b []byte) ([]byte, error) {
	w := writer{b: b}
	w.u16(m.Flags)
	w.u16(m.MissSendLen)
	return w.b, nil
}

func (m *SetConfig) unmarshalBody(data []byte) error {
	r := reader{b: data}
	m.Flags = r.u16()
	m.MissSendLen = r.u16()
	return r.err
}

func (*BarrierRequest) marshalBody(b []byte) ([]byte, error) { return b, nil }
func (*BarrierRequest) unmarshalBody(data []byte) error      { return nil }

func (*BarrierReply) marshalBody(b []byte) ([]byte, error) { return b, nil }
func (*BarrierReply) unmarshalBody(data []byte) error      { return nil }

func (m *QueueGetConfigRequest) marshalBody(b []byte) ([]byte, error) {
	w := writer{b: b}
	w.u16(m.Port)
	w.pad(2)
	return w.b, nil
}

func (m *QueueGetConfigRequest) unmarshalBody(data []byte) error {
	r := reader{b: data}
	m.Port = r.u16()
	r.skip(2)
	return r.err
}

func (m *QueueGetConfigReply) marshalBody(b []byte) ([]byte, error) {
	w := writer{b: b}
	w.u16(m.Port)
	w.pad(6)
	return w.b, nil
}

func (m *QueueGetConfigReply) unmarshalBody(data []byte) error {
	r := reader{b: data}
	m.Port = r.u16()
	r.skip(6)
	return r.err
}
