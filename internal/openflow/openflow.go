// Package openflow implements the OpenFlow 1.0 wire protocol (OpenFlow
// Switch Specification 1.0.0, December 2009).
//
// It provides encoding and decoding for every OpenFlow 1.0 message type,
// the flow match structure with wildcard semantics, the action list, and
// framing helpers for reading and writing messages over a stream. The
// package plays the role of the Loxi library in the ATTAIN paper: both the
// simulated switches and controllers and the attack injector's protocol
// message encoder/decoder are built on it.
package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the OpenFlow protocol version implemented by this package.
const Version uint8 = 0x01

// HeaderLen is the length in bytes of the ofp_header that prefixes every
// message.
const HeaderLen = 8

// MaxMessageLen bounds accepted message lengths to guard against corrupt or
// hostile length fields.
const MaxMessageLen = 1 << 16

// NoBuffer is the buffer_id value meaning "packet not buffered".
const NoBuffer uint32 = 0xffffffff

// Type identifies an OpenFlow 1.0 message type (ofp_type).
type Type uint8

// OpenFlow 1.0 message types.
const (
	TypeHello                 Type = 0
	TypeError                 Type = 1
	TypeEchoRequest           Type = 2
	TypeEchoReply             Type = 3
	TypeVendor                Type = 4
	TypeFeaturesRequest       Type = 5
	TypeFeaturesReply         Type = 6
	TypeGetConfigRequest      Type = 7
	TypeGetConfigReply        Type = 8
	TypeSetConfig             Type = 9
	TypePacketIn              Type = 10
	TypeFlowRemoved           Type = 11
	TypePortStatus            Type = 12
	TypePacketOut             Type = 13
	TypeFlowMod               Type = 14
	TypePortMod               Type = 15
	TypeStatsRequest          Type = 16
	TypeStatsReply            Type = 17
	TypeBarrierRequest        Type = 18
	TypeBarrierReply          Type = 19
	TypeQueueGetConfigRequest Type = 20
	TypeQueueGetConfigReply   Type = 21
)

var typeNames = map[Type]string{
	TypeHello:                 "HELLO",
	TypeError:                 "ERROR",
	TypeEchoRequest:           "ECHO_REQUEST",
	TypeEchoReply:             "ECHO_REPLY",
	TypeVendor:                "VENDOR",
	TypeFeaturesRequest:       "FEATURES_REQUEST",
	TypeFeaturesReply:         "FEATURES_REPLY",
	TypeGetConfigRequest:      "GET_CONFIG_REQUEST",
	TypeGetConfigReply:        "GET_CONFIG_REPLY",
	TypeSetConfig:             "SET_CONFIG",
	TypePacketIn:              "PACKET_IN",
	TypeFlowRemoved:           "FLOW_REMOVED",
	TypePortStatus:            "PORT_STATUS",
	TypePacketOut:             "PACKET_OUT",
	TypeFlowMod:               "FLOW_MOD",
	TypePortMod:               "PORT_MOD",
	TypeStatsRequest:          "STATS_REQUEST",
	TypeStatsReply:            "STATS_REPLY",
	TypeBarrierRequest:        "BARRIER_REQUEST",
	TypeBarrierReply:          "BARRIER_REPLY",
	TypeQueueGetConfigRequest: "QUEUE_GET_CONFIG_REQUEST",
	TypeQueueGetConfigReply:   "QUEUE_GET_CONFIG_REPLY",
}

// String returns the spec name of the message type, e.g. "FLOW_MOD".
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("UNKNOWN_TYPE(%d)", uint8(t))
}

// ParseType returns the Type named by the spec string s (e.g. "FLOW_MOD").
func ParseType(s string) (Type, error) {
	for t, name := range typeNames {
		if name == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("openflow: unknown message type %q", s)
}

// Header is the ofp_header that prefixes every OpenFlow message.
type Header struct {
	Version uint8
	Type    Type
	Length  uint16
	Xid     uint32
}

// Sentinel errors returned by decoding functions.
var (
	ErrTruncated   = errors.New("openflow: truncated message")
	ErrBadVersion  = errors.New("openflow: unsupported protocol version")
	ErrBadLength   = errors.New("openflow: invalid length field")
	ErrUnknownType = errors.New("openflow: unknown message type")
)

// Message is the decoded body of an OpenFlow message. The transaction id
// lives in the frame header and is supplied separately at marshal time.
type Message interface {
	// Type returns the ofp_type of the message.
	Type() Type
	// marshalBody appends the wire encoding of the body (everything after
	// the 8-byte header) to b and returns the extended slice.
	marshalBody(b []byte) ([]byte, error)
	// unmarshalBody parses the wire encoding of the body.
	unmarshalBody(data []byte) error
}

// Marshal encodes msg into a complete framed OpenFlow message with the given
// transaction id.
func Marshal(xid uint32, msg Message) ([]byte, error) {
	buf, err := AppendMessage(make([]byte, 0, HeaderLen+64), xid, msg)
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// DecodeHeader parses the 8-byte header at the start of data.
func DecodeHeader(data []byte) (Header, error) {
	if len(data) < HeaderLen {
		return Header{}, ErrTruncated
	}
	h := Header{
		Version: data[0],
		Type:    Type(data[1]),
		Length:  binary.BigEndian.Uint16(data[2:4]),
		Xid:     binary.BigEndian.Uint32(data[4:8]),
	}
	if int(h.Length) < HeaderLen {
		return h, ErrBadLength
	}
	return h, nil
}

// Unmarshal decodes one complete framed message. It returns the parsed
// header and the typed body.
func Unmarshal(data []byte) (Header, Message, error) {
	h, err := DecodeHeader(data)
	if err != nil {
		return h, nil, err
	}
	if h.Version != Version {
		return h, nil, fmt.Errorf("version %d: %w", h.Version, ErrBadVersion)
	}
	if int(h.Length) > len(data) {
		return h, nil, ErrTruncated
	}
	msg, err := newMessage(h.Type)
	if err != nil {
		return h, nil, err
	}
	if err := msg.unmarshalBody(data[HeaderLen:h.Length]); err != nil {
		return h, nil, fmt.Errorf("unmarshal %s: %w", h.Type, err)
	}
	return h, msg, nil
}

// newMessage returns a zero value of the concrete message type for t.
func newMessage(t Type) (Message, error) {
	switch t {
	case TypeHello:
		return &Hello{}, nil
	case TypeError:
		return &ErrorMsg{}, nil
	case TypeEchoRequest:
		return &EchoRequest{}, nil
	case TypeEchoReply:
		return &EchoReply{}, nil
	case TypeVendor:
		return &Vendor{}, nil
	case TypeFeaturesRequest:
		return &FeaturesRequest{}, nil
	case TypeFeaturesReply:
		return &FeaturesReply{}, nil
	case TypeGetConfigRequest:
		return &GetConfigRequest{}, nil
	case TypeGetConfigReply:
		return &GetConfigReply{}, nil
	case TypeSetConfig:
		return &SetConfig{}, nil
	case TypePacketIn:
		return &PacketIn{}, nil
	case TypeFlowRemoved:
		return &FlowRemoved{}, nil
	case TypePortStatus:
		return &PortStatus{}, nil
	case TypePacketOut:
		return &PacketOut{}, nil
	case TypeFlowMod:
		return &FlowMod{}, nil
	case TypePortMod:
		return &PortMod{}, nil
	case TypeStatsRequest:
		return &StatsRequest{}, nil
	case TypeStatsReply:
		return &StatsReply{}, nil
	case TypeBarrierRequest:
		return &BarrierRequest{}, nil
	case TypeBarrierReply:
		return &BarrierReply{}, nil
	case TypeQueueGetConfigRequest:
		return &QueueGetConfigRequest{}, nil
	case TypeQueueGetConfigReply:
		return &QueueGetConfigReply{}, nil
	default:
		return nil, fmt.Errorf("type %d: %w", uint8(t), ErrUnknownType)
	}
}

// ReadRaw reads exactly one framed OpenFlow message from r and returns the
// raw bytes (header included). It validates only the header framing, not the
// body, so it is usable even when the payload must be treated as opaque
// (e.g. the injector without the READMESSAGE capability).
func ReadRaw(r io.Reader) ([]byte, error) {
	buf, err := ReadRawInto(r, nil)
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadMessage reads and decodes one message from r.
func ReadMessage(r io.Reader) (Header, Message, error) {
	raw, err := ReadRaw(r)
	if err != nil {
		return Header{}, nil, err
	}
	return Unmarshal(raw)
}

// WriteMessage marshals msg with the given xid and writes it to w.
func WriteMessage(w io.Writer, xid uint32, msg Message) error {
	buf, err := Marshal(xid, msg)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}
