package openflow

import (
	"bytes"
	"testing"
)

// fuzzSeedMessages returns one valid message of every type — the shared
// seed corpus for FuzzUnmarshal and FuzzFrameViewDifferential.
func fuzzSeedMessages() []Message {
	return []Message{
		&Hello{},
		&ErrorMsg{ErrType: 3, Code: 1, Data: []byte{1}},
		&EchoRequest{Data: []byte("seed")},
		&EchoReply{},
		&Vendor{VendorID: 0x2320},
		&FeaturesRequest{},
		&FeaturesReply{DatapathID: 7, NBuffers: 256, NTables: 1,
			Ports: []PhyPort{{PortNo: 1, Name: "p1"}}},
		&GetConfigRequest{},
		&GetConfigReply{MissSendLen: 128},
		&SetConfig{MissSendLen: 128},
		&PacketIn{BufferID: NoBuffer, InPort: 1, Data: []byte{0xde, 0xad}},
		&FlowRemoved{Match: MatchAll(), Reason: FlowRemovedIdleTimeout},
		&PortStatus{Reason: PortStatusModify, Desc: PhyPort{PortNo: 2}},
		&PacketOut{BufferID: NoBuffer, InPort: PortNone,
			Actions: []Action{ActionOutput{Port: PortFlood}}, Data: []byte{1}},
		&FlowMod{Match: MatchAll(), BufferID: NoBuffer, OutPort: PortNone,
			Actions: []Action{ActionOutput{Port: 1}, ActionSetNWTOS{TOS: 4}}},
		&PortMod{PortNo: 1},
		&StatsRequest{Body: &FlowStatsRequest{Match: MatchAll(), TableID: 0xff, OutPort: PortNone}},
		&StatsReply{Body: &AggregateStatsReply{PacketCount: 1}},
		&BarrierRequest{},
		&BarrierReply{},
		&QueueGetConfigRequest{Port: 1},
		&QueueGetConfigReply{Port: 1},
	}
}

// addFuzzSeeds registers the shared corpus: one frame per message type
// plus framing edge cases.
func addFuzzSeeds(f *testing.F) {
	f.Helper()
	for _, m := range fuzzSeedMessages() {
		raw, err := Marshal(1, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte{})
	f.Add([]byte{0x01, 14, 0x00, 0x09, 0, 0, 0, 0, 0xff}) // short flow mod
}

// FuzzUnmarshal feeds arbitrary bytes through the frame decoder; it must
// never panic, and whatever decodes must re-encode to an equivalent frame.
func FuzzUnmarshal(f *testing.F) {
	addFuzzSeeds(f)

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, msg, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Valid decodes must re-encode and decode to the same value.
		out, err := Marshal(hdr.Xid, msg)
		if err != nil {
			t.Fatalf("re-marshal of decoded %s failed: %v", msg.Type(), err)
		}
		hdr2, msg2, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-decode of %s failed: %v", msg.Type(), err)
		}
		if hdr2.Xid != hdr.Xid || hdr2.Type != hdr.Type {
			t.Fatalf("header drift: %+v vs %+v", hdr, hdr2)
		}
		// Third generation must be byte-identical (canonical form).
		out2, err := Marshal(hdr2.Xid, msg2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("non-canonical re-encode of %s", msg.Type())
		}
	})
}
