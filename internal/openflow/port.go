package openflow

import "attain/internal/netaddr"

// Reserved OpenFlow 1.0 port numbers (ofp_port).
const (
	// PortMax is the highest usable physical port number.
	PortMax uint16 = 0xff00
	// PortInPort sends the packet back out its ingress port.
	PortInPort uint16 = 0xfff8
	// PortTable submits the packet to the flow table (PACKET_OUT only).
	PortTable uint16 = 0xfff9
	// PortNormal processes with traditional L2/L3 switching.
	PortNormal uint16 = 0xfffa
	// PortFlood floods to all ports except ingress and flood-disabled ports.
	PortFlood uint16 = 0xfffb
	// PortAll forwards to all ports except ingress.
	PortAll uint16 = 0xfffc
	// PortController sends to the controller as a PACKET_IN.
	PortController uint16 = 0xfffd
	// PortLocal is the switch-local networking stack port.
	PortLocal uint16 = 0xfffe
	// PortNone means no port.
	PortNone uint16 = 0xffff
)

// Port config flags (ofp_port_config).
const (
	PortConfigPortDown   uint32 = 1 << 0
	PortConfigNoSTP      uint32 = 1 << 1
	PortConfigNoRecv     uint32 = 1 << 2
	PortConfigNoRecvSTP  uint32 = 1 << 3
	PortConfigNoFlood    uint32 = 1 << 4
	PortConfigNoFwd      uint32 = 1 << 5
	PortConfigNoPacketIn uint32 = 1 << 6
)

// Port state flags (ofp_port_state).
const (
	PortStateLinkDown uint32 = 1 << 0
)

// Port feature flags (ofp_port_features), subset relevant to the simulator.
const (
	PortFeature10MbFD  uint32 = 1 << 1
	PortFeature100MbFD uint32 = 1 << 3
	PortFeature1GbFD   uint32 = 1 << 5
	PortFeature10GbFD  uint32 = 1 << 6
	PortFeatureCopper  uint32 = 1 << 7
)

// phyPortLen is the wire size of ofp_phy_port.
const phyPortLen = 48

// PhyPort describes one switch port (ofp_phy_port).
type PhyPort struct {
	PortNo     uint16
	HWAddr     netaddr.MAC
	Name       string
	Config     uint32
	State      uint32
	Curr       uint32
	Advertised uint32
	Supported  uint32
	Peer       uint32
}

func (p PhyPort) marshal(w *writer) {
	w.u16(p.PortNo)
	w.bytes(p.HWAddr[:])
	w.fixedString(p.Name, 16)
	w.u32(p.Config)
	w.u32(p.State)
	w.u32(p.Curr)
	w.u32(p.Advertised)
	w.u32(p.Supported)
	w.u32(p.Peer)
}

func (p *PhyPort) unmarshal(r *reader) {
	p.PortNo = r.u16()
	copy(p.HWAddr[:], r.bytes(6))
	p.Name = r.fixedString(16)
	p.Config = r.u32()
	p.State = r.u32()
	p.Curr = r.u32()
	p.Advertised = r.u32()
	p.Supported = r.u32()
	p.Peer = r.u32()
}
