package openflow

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"attain/internal/netaddr"
)

var (
	macA = netaddr.MustParseMAC("0a:00:00:00:00:01")
	macB = netaddr.MustParseMAC("0a:00:00:00:00:02")
	ipA  = netaddr.MustParseIPv4("10.0.0.1")
	ipB  = netaddr.MustParseIPv4("10.0.0.2")
)

// roundTrip marshals msg, unmarshals the bytes, and returns the decoded
// message for comparison.
func roundTrip(t *testing.T, xid uint32, msg Message) Message {
	t.Helper()
	buf, err := Marshal(xid, msg)
	if err != nil {
		t.Fatalf("Marshal(%s): %v", msg.Type(), err)
	}
	h, got, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal(%s): %v", msg.Type(), err)
	}
	if h.Xid != xid {
		t.Errorf("xid = %d, want %d", h.Xid, xid)
	}
	if h.Type != msg.Type() {
		t.Errorf("type = %s, want %s", h.Type, msg.Type())
	}
	if int(h.Length) != len(buf) {
		t.Errorf("length = %d, want %d", h.Length, len(buf))
	}
	return got
}

func testRoundTripEqual(t *testing.T, msg Message) {
	t.Helper()
	got := roundTrip(t, 42, msg)
	if !reflect.DeepEqual(got, msg) {
		t.Errorf("round trip mismatch for %s:\n got  %#v\n want %#v", msg.Type(), got, msg)
	}
}

func TestRoundTripSimpleMessages(t *testing.T) {
	msgs := []Message{
		&Hello{},
		&EchoRequest{Data: []byte("ping")},
		&EchoReply{Data: []byte("pong")},
		&Vendor{VendorID: 0x2320, Data: []byte{1, 2, 3}},
		&ErrorMsg{ErrType: ErrTypeFlowModFailed, Code: ErrCodeFlowModAllTablesFull, Data: []byte{0xde, 0xad}},
		&FeaturesRequest{},
		&GetConfigRequest{},
		&GetConfigReply{Flags: ConfigFragNormal, MissSendLen: 128},
		&SetConfig{Flags: ConfigFragDrop, MissSendLen: 0xffff},
		&BarrierRequest{},
		&BarrierReply{},
		&QueueGetConfigRequest{Port: 3},
		&QueueGetConfigReply{Port: 3},
	}
	for _, m := range msgs {
		testRoundTripEqual(t, m)
	}
}

func TestRoundTripEmptyPayloadsStayNil(t *testing.T) {
	// Echo with no payload must round-trip without growing.
	got := roundTrip(t, 1, &EchoRequest{}).(*EchoRequest)
	if len(got.Data) != 0 {
		t.Errorf("echo data = %v, want empty", got.Data)
	}
}

func TestRoundTripFeaturesReply(t *testing.T) {
	msg := &FeaturesReply{
		DatapathID:   0x00000000000000a1,
		NBuffers:     256,
		NTables:      1,
		Capabilities: CapabilityFlowStats | CapabilityPortStats,
		Actions:      0xfff,
		Ports: []PhyPort{
			{PortNo: 1, HWAddr: macA, Name: "s1-eth1", Curr: PortFeature100MbFD | PortFeatureCopper},
			{PortNo: 2, HWAddr: macB, Name: "s1-eth2", State: PortStateLinkDown},
		},
	}
	testRoundTripEqual(t, msg)
}

func TestRoundTripFlowMod(t *testing.T) {
	m := ExactFrom(FieldView{
		InPort: 1, DLSrc: macA, DLDst: macB, DLType: 0x0800,
		NWProto: 6, NWSrc: ipA, NWDst: ipB, TPSrc: 12345, TPDst: 80,
	})
	msg := &FlowMod{
		Match:       m,
		Cookie:      0xdeadbeef,
		Command:     FlowModAdd,
		IdleTimeout: 5,
		HardTimeout: 30,
		Priority:    100,
		BufferID:    NoBuffer,
		OutPort:     PortNone,
		Flags:       FlowModFlagSendFlowRem,
		Actions:     []Action{ActionOutput{Port: 2, MaxLen: 0}},
	}
	testRoundTripEqual(t, msg)
}

func TestRoundTripFlowModAllActions(t *testing.T) {
	msg := &FlowMod{
		Match:    MatchAll(),
		Command:  FlowModModify,
		BufferID: NoBuffer,
		OutPort:  PortNone,
		Actions: []Action{
			ActionOutput{Port: PortFlood, MaxLen: 65535},
			ActionSetVLANVID{VID: 100},
			ActionSetVLANPCP{PCP: 5},
			ActionStripVLAN{},
			ActionSetDLSrc{Addr: macA},
			ActionSetDLDst{Addr: macB},
			ActionSetNWSrc{Addr: ipA},
			ActionSetNWDst{Addr: ipB},
			ActionSetNWTOS{TOS: 0x10},
			ActionSetTPSrc{Port: 8080},
			ActionSetTPDst{Port: 443},
			ActionEnqueue{Port: 1, QueueID: 7},
			// Vendor bodies are padded to 8-byte alignment on the wire, so
			// only 8-aligned bodies round-trip exactly.
			ActionVendor{Vendor: 0x2320, Body: []byte{9, 8, 7, 6, 5, 4, 3, 2}},
		},
	}
	testRoundTripEqual(t, msg)
}

func TestRoundTripFlowRemoved(t *testing.T) {
	msg := &FlowRemoved{
		Match:        ExactFrom(FieldView{InPort: 3, DLSrc: macA, DLDst: macB}),
		Cookie:       7,
		Priority:     10,
		Reason:       FlowRemovedIdleTimeout,
		DurationSec:  12,
		DurationNsec: 345,
		IdleTimeout:  5,
		PacketCount:  1000,
		ByteCount:    64000,
	}
	testRoundTripEqual(t, msg)
}

func TestRoundTripPacketIn(t *testing.T) {
	msg := &PacketIn{
		BufferID: 77,
		TotalLen: 128,
		InPort:   2,
		Reason:   PacketInReasonNoMatch,
		Data:     bytes.Repeat([]byte{0xab}, 60),
	}
	testRoundTripEqual(t, msg)
}

func TestRoundTripPacketOut(t *testing.T) {
	tests := []*PacketOut{
		{BufferID: 42, InPort: 1, Actions: []Action{ActionOutput{Port: 2}}},
		{BufferID: NoBuffer, InPort: PortNone, Actions: []Action{ActionOutput{Port: PortFlood}}, Data: []byte{1, 2, 3, 4}},
		{BufferID: NoBuffer, InPort: 1}, // drop: no actions
	}
	for _, m := range tests {
		testRoundTripEqual(t, m)
	}
}

func TestRoundTripPortStatusAndMod(t *testing.T) {
	testRoundTripEqual(t, &PortStatus{
		Reason: PortStatusModify,
		Desc:   PhyPort{PortNo: 4, HWAddr: macA, Name: "s2-eth4", State: PortStateLinkDown},
	})
	testRoundTripEqual(t, &PortMod{
		PortNo: 4, HWAddr: macA,
		Config: PortConfigPortDown, Mask: PortConfigPortDown, Advertise: PortFeature1GbFD,
	})
}

func TestRoundTripStats(t *testing.T) {
	flowMatch := ExactFrom(FieldView{InPort: 1, DLType: 0x0800, NWSrc: ipA, NWDst: ipB})
	msgs := []Message{
		&StatsRequest{Body: DescStatsRequest{}},
		&StatsReply{Body: &DescStatsReply{MfrDesc: "ATTAIN", HWDesc: "sim", SWDesc: "switchsim", SerialNum: "1", DPDesc: "s1"}},
		&StatsRequest{Body: &FlowStatsRequest{Match: MatchAll(), TableID: 0xff, OutPort: PortNone}},
		&StatsReply{Body: &FlowStatsReply{Flows: []FlowStatsEntry{
			{TableID: 0, Match: flowMatch, DurationSec: 10, Priority: 1, IdleTimeout: 5, HardTimeout: 0,
				Cookie: 3, PacketCount: 100, ByteCount: 6400,
				Actions: []Action{ActionOutput{Port: 2}}},
			{TableID: 0, Match: MatchAll(), Priority: 0},
		}}},
		&StatsRequest{Body: &AggregateStatsRequest{Match: MatchAll(), TableID: 0xff, OutPort: PortNone}},
		&StatsReply{Body: &AggregateStatsReply{PacketCount: 5, ByteCount: 320, FlowCount: 2}},
		&StatsRequest{Body: TableStatsRequest{}},
		&StatsReply{Body: &TableStatsReply{Tables: []TableStatsEntry{
			{TableID: 0, Name: "classifier", Wildcards: WildcardAll, MaxEntries: 1 << 20, ActiveCount: 12, LookupCount: 99, MatchedCount: 88},
		}}},
		&StatsRequest{Body: &PortStatsRequest{PortNo: PortNone}},
		&StatsReply{Flags: StatsReplyFlagMore, Body: &PortStatsReply{Ports: []PortStatsEntry{
			{PortNo: 1, RxPackets: 10, TxPackets: 20, RxBytes: 1000, TxBytes: 2000},
		}}},
	}
	for _, m := range msgs {
		testRoundTripEqual(t, m)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	valid, err := Marshal(1, &Hello{})
	if err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", valid[:4], ErrTruncated},
		{"bad version", append([]byte{0x04}, valid[1:]...), ErrBadVersion},
		{"length below header", []byte{0x01, 0, 0, 4, 0, 0, 0, 0}, ErrBadLength},
		{"length beyond data", []byte{0x01, 0, 0, 20, 0, 0, 0, 0}, ErrTruncated},
		{"unknown type", []byte{0x01, 99, 0, 8, 0, 0, 0, 0}, ErrUnknownType},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Unmarshal(tc.data)
			if !errors.Is(err, tc.want) {
				t.Errorf("Unmarshal error = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestUnmarshalTruncatedBodies(t *testing.T) {
	// A FLOW_MOD body shorter than the fixed part must fail cleanly.
	msg := &FlowMod{Match: MatchAll(), BufferID: NoBuffer, OutPort: PortNone}
	buf, err := Marshal(9, msg)
	if err != nil {
		t.Fatal(err)
	}
	for cut := HeaderLen; cut < len(buf); cut += 7 {
		trunc := make([]byte, cut)
		copy(trunc, buf[:cut])
		// Fix the header length so only the body is short.
		trunc[2] = byte(cut >> 8)
		trunc[3] = byte(cut)
		if _, _, err := Unmarshal(trunc); err == nil {
			t.Errorf("Unmarshal of %d/%d bytes succeeded, want error", cut, len(buf))
		}
	}
}

func TestActionListRejectsBadLengths(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{"short header", []byte{0, 0}},
		{"length zero", []byte{0, 0, 0, 0, 0, 0, 0, 0}},
		{"length unaligned", []byte{0, 0, 0, 9, 0, 0, 0, 0, 0}},
		{"length beyond data", []byte{0, 0, 0, 16, 0, 0, 0, 0}},
		{"unknown type", []byte{0x12, 0x34, 0, 8, 0, 0, 0, 0}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := unmarshalActions(tc.data); err == nil {
				t.Error("unmarshalActions succeeded, want error")
			}
		})
	}
}

func TestReadWriteMessageStream(t *testing.T) {
	var buf bytes.Buffer
	want := []Message{
		&Hello{},
		&EchoRequest{Data: []byte("abc")},
		&FlowMod{Match: MatchAll(), BufferID: NoBuffer, OutPort: PortNone,
			Actions: []Action{ActionOutput{Port: 1}}},
		&BarrierRequest{},
	}
	for i, m := range want {
		if err := WriteMessage(&buf, uint32(i), m); err != nil {
			t.Fatalf("WriteMessage(%d): %v", i, err)
		}
	}
	for i := range want {
		h, m, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("ReadMessage(%d): %v", i, err)
		}
		if h.Xid != uint32(i) {
			t.Errorf("message %d xid = %d", i, h.Xid)
		}
		if !reflect.DeepEqual(m, want[i]) {
			t.Errorf("message %d = %#v, want %#v", i, m, want[i])
		}
	}
	if _, _, err := ReadMessage(&buf); !errors.Is(err, io.EOF) {
		t.Errorf("ReadMessage at end = %v, want EOF", err)
	}
}

func TestReadRawPartialStream(t *testing.T) {
	full, err := Marshal(5, &EchoRequest{Data: []byte("xyz")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRaw(bytes.NewReader(full[:len(full)-1])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("ReadRaw of truncated body = %v, want unexpected EOF", err)
	}
	if _, err := ReadRaw(bytes.NewReader(full[:3])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("ReadRaw of truncated header = %v, want unexpected EOF", err)
	}
}

func TestTypeStringAndParse(t *testing.T) {
	for ty, name := range typeNames {
		if got := ty.String(); got != name {
			t.Errorf("Type(%d).String() = %q, want %q", ty, got, name)
		}
		parsed, err := ParseType(name)
		if err != nil || parsed != ty {
			t.Errorf("ParseType(%q) = %v, %v, want %v", name, parsed, err, ty)
		}
	}
	if got := Type(200).String(); got != "UNKNOWN_TYPE(200)" {
		t.Errorf("unknown type string = %q", got)
	}
	if _, err := ParseType("NOT_A_TYPE"); err == nil {
		t.Error("ParseType of bogus name succeeded")
	}
}

func randomMessage(rng *rand.Rand) Message {
	switch rng.Intn(6) {
	case 0:
		data := make([]byte, rng.Intn(31)+1)
		rng.Read(data)
		return &EchoRequest{Data: data}
	case 1:
		var m Match
		m.Wildcards = rng.Uint32() & WildcardAll
		rng.Read(m.DLSrc[:])
		rng.Read(m.NWSrc[:])
		m.TPDst = uint16(rng.Uint32())
		return &FlowMod{
			Match: m, Cookie: rng.Uint64(),
			Command:  FlowModCommand(rng.Intn(5)),
			Priority: uint16(rng.Uint32()), BufferID: NoBuffer, OutPort: PortNone,
			Actions: []Action{ActionOutput{Port: uint16(rng.Intn(10) + 1)}},
		}
	case 2:
		data := make([]byte, rng.Intn(63)+1)
		rng.Read(data)
		return &PacketIn{BufferID: rng.Uint32(), TotalLen: uint16(len(data)), InPort: uint16(rng.Intn(100)), Data: data}
	case 3:
		return &PacketOut{BufferID: NoBuffer, InPort: uint16(rng.Intn(100)),
			Actions: []Action{ActionOutput{Port: PortFlood}}, Data: []byte{1}}
	case 4:
		return &ErrorMsg{ErrType: uint16(rng.Intn(6)), Code: uint16(rng.Intn(10))}
	default:
		return &FeaturesReply{DatapathID: rng.Uint64(), NBuffers: 256, NTables: 1}
	}
}

// TestQuickRoundTrip property-tests that marshalling then unmarshalling any
// generated message yields an identical value.
func TestQuickRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed int64, xid uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		msg := randomMessage(rng)
		buf, err := Marshal(xid, msg)
		if err != nil {
			return false
		}
		h, got, err := Unmarshal(buf)
		if err != nil || h.Xid != xid {
			return false
		}
		return reflect.DeepEqual(got, msg)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickHeaderNeverPanics fuzzes random byte strings through Unmarshal.
func TestQuickHeaderNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _, _ = Unmarshal(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMarshalRejectsOversize(t *testing.T) {
	msg := &EchoRequest{Data: make([]byte, MaxMessageLen)}
	if _, err := Marshal(1, msg); !errors.Is(err, ErrBadLength) {
		t.Errorf("Marshal oversize = %v, want ErrBadLength", err)
	}
}
