package openflow

import "attain/internal/netaddr"

// PacketInReason says why a packet was sent to the controller
// (ofp_packet_in_reason).
type PacketInReason uint8

// Packet-in reasons.
const (
	PacketInReasonNoMatch PacketInReason = 0
	PacketInReasonAction  PacketInReason = 1
)

// String returns the spec name of the reason.
func (r PacketInReason) String() string {
	switch r {
	case PacketInReasonNoMatch:
		return "NO_MATCH"
	case PacketInReasonAction:
		return "ACTION"
	default:
		return "UNKNOWN_REASON"
	}
}

// PacketIn delivers a data-plane packet to the controller (ofp_packet_in).
type PacketIn struct {
	BufferID uint32
	TotalLen uint16
	InPort   uint16
	Reason   PacketInReason
	Data     []byte
}

// Type implements Message.
func (*PacketIn) Type() Type { return TypePacketIn }

func (m *PacketIn) marshalBody(b []byte) ([]byte, error) {
	w := writer{b: b}
	w.u32(m.BufferID)
	w.u16(m.TotalLen)
	w.u16(m.InPort)
	w.u8(uint8(m.Reason))
	w.pad(1)
	w.bytes(m.Data)
	return w.b, nil
}

func (m *PacketIn) unmarshalBody(data []byte) error {
	r := reader{b: data}
	m.BufferID = r.u32()
	m.TotalLen = r.u16()
	m.InPort = r.u16()
	m.Reason = PacketInReason(r.u8())
	r.skip(1)
	m.Data = r.rest()
	return r.err
}

// PacketOut injects a data-plane packet from the controller (ofp_packet_out).
// If BufferID is not NoBuffer, the switch sends the buffered packet and Data
// is empty; otherwise Data carries the full packet.
type PacketOut struct {
	BufferID uint32
	InPort   uint16
	Actions  []Action
	Data     []byte
}

// Type implements Message.
func (*PacketOut) Type() Type { return TypePacketOut }

func (m *PacketOut) marshalBody(b []byte) ([]byte, error) {
	w := writer{b: b}
	w.u32(m.BufferID)
	w.u16(m.InPort)
	lenAt := len(w.b)
	w.u16(0) // actions_len placeholder
	n := marshalActions(&w, m.Actions)
	w.b[lenAt] = byte(n >> 8)
	w.b[lenAt+1] = byte(n)
	w.bytes(m.Data)
	return w.b, nil
}

func (m *PacketOut) unmarshalBody(data []byte) error {
	r := reader{b: data}
	m.BufferID = r.u32()
	m.InPort = r.u16()
	actionsLen := int(r.u16())
	if r.err != nil {
		return r.err
	}
	if actionsLen > r.remaining() {
		return ErrBadLength
	}
	actions, err := unmarshalActions(r.bytes(actionsLen))
	if err != nil {
		return err
	}
	m.Actions = actions
	m.Data = r.rest()
	return r.err
}

// PortStatusReason says what changed about a port (ofp_port_reason).
type PortStatusReason uint8

// Port status reasons.
const (
	PortStatusAdd    PortStatusReason = 0
	PortStatusDelete PortStatusReason = 1
	PortStatusModify PortStatusReason = 2
)

// PortStatus notifies the controller of a port change (ofp_port_status).
type PortStatus struct {
	Reason PortStatusReason
	Desc   PhyPort
}

// Type implements Message.
func (*PortStatus) Type() Type { return TypePortStatus }

func (m *PortStatus) marshalBody(b []byte) ([]byte, error) {
	w := writer{b: b}
	w.u8(uint8(m.Reason))
	w.pad(7)
	m.Desc.marshal(&w)
	return w.b, nil
}

func (m *PortStatus) unmarshalBody(data []byte) error {
	r := reader{b: data}
	m.Reason = PortStatusReason(r.u8())
	r.skip(7)
	m.Desc.unmarshal(&r)
	return r.err
}

// PortMod modifies the behaviour of a port (ofp_port_mod).
type PortMod struct {
	PortNo    uint16
	HWAddr    netaddr.MAC
	Config    uint32
	Mask      uint32
	Advertise uint32
}

// Type implements Message.
func (*PortMod) Type() Type { return TypePortMod }

func (m *PortMod) marshalBody(b []byte) ([]byte, error) {
	w := writer{b: b}
	w.u16(m.PortNo)
	w.bytes(m.HWAddr[:])
	w.u32(m.Config)
	w.u32(m.Mask)
	w.u32(m.Advertise)
	w.pad(4)
	return w.b, nil
}

func (m *PortMod) unmarshalBody(data []byte) error {
	r := reader{b: data}
	m.PortNo = r.u16()
	copy(m.HWAddr[:], r.bytes(6))
	m.Config = r.u32()
	m.Mask = r.u32()
	m.Advertise = r.u32()
	r.skip(4)
	return r.err
}
