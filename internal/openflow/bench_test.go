package openflow

import "testing"

func benchFlowMod() *FlowMod {
	return &FlowMod{
		Match: ExactFrom(FieldView{
			InPort: 1, DLSrc: macA, DLDst: macB, DLType: 0x0800,
			NWProto: 6, NWSrc: ipA, NWDst: ipB, TPSrc: 1000, TPDst: 80,
		}),
		Command: FlowModAdd, IdleTimeout: 5, Priority: 1,
		BufferID: NoBuffer, OutPort: PortNone,
		Actions: []Action{ActionOutput{Port: 2}},
	}
}

func BenchmarkMarshalFlowMod(b *testing.B) {
	msg := benchFlowMod()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(uint32(i), msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalFlowMod(b *testing.B) {
	raw, err := Marshal(1, benchFlowMod())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Unmarshal(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalPacketIn(b *testing.B) {
	msg := &PacketIn{BufferID: 7, TotalLen: 1400, InPort: 3, Data: make([]byte, 128)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(uint32(i), msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchMatches(b *testing.B) {
	f := FieldView{
		InPort: 1, DLSrc: macA, DLDst: macB, DLType: 0x0800,
		NWProto: 6, NWSrc: ipA, NWDst: ipB, TPSrc: 1000, TPDst: 80,
	}
	m := ExactFrom(f)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !m.Matches(f) {
			b.Fatal("mismatch")
		}
	}
}

func BenchmarkMatchSubsumes(b *testing.B) {
	exact := ExactFrom(FieldView{InPort: 1, DLSrc: macA, NWSrc: ipA})
	all := MatchAll()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !all.Subsumes(exact) {
			b.Fatal("unexpected")
		}
	}
}
