package openflow

import "encoding/binary"

// writer accumulates big-endian wire data. Append-style helpers keep message
// marshalling terse; the slice grows as needed.
type writer struct {
	b []byte
}

func (w *writer) u8(v uint8)     { w.b = append(w.b, v) }
func (w *writer) u16(v uint16)   { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *writer) u32(v uint32)   { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *writer) u64(v uint64)   { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *writer) bytes(v []byte) { w.b = append(w.b, v...) }

func (w *writer) pad(n int) {
	for i := 0; i < n; i++ {
		w.b = append(w.b, 0)
	}
}

// fixedString writes s into an n-byte NUL-padded field, truncating if needed.
func (w *writer) fixedString(s string, n int) {
	b := make([]byte, n)
	copy(b, s)
	w.b = append(w.b, b...)
}

// reader consumes big-endian wire data with sticky error semantics: after
// the first short read every subsequent call returns zero values and the
// caller checks r.err once at the end.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() bool {
	if r.err == nil {
		r.err = ErrTruncated
	}
	return true
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) u8() uint8 {
	if r.err != nil || r.remaining() < 1 && r.fail() {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.remaining() < 2 && r.fail() {
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.remaining() < 4 && r.fail() {
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.remaining() < 8 && r.fail() {
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// bytes returns a copy of the next n bytes.
func (r *reader) bytes(n int) []byte {
	if r.err != nil || r.remaining() < n && r.fail() {
		return nil
	}
	v := make([]byte, n)
	copy(v, r.b[r.off:r.off+n])
	r.off += n
	return v
}

// skip discards n bytes of padding.
func (r *reader) skip(n int) {
	if r.err != nil || r.remaining() < n && r.fail() {
		return
	}
	r.off += n
}

// rest returns a copy of all remaining bytes, or nil if none remain.
func (r *reader) rest() []byte {
	if r.err != nil || r.remaining() == 0 {
		return nil
	}
	v := make([]byte, r.remaining())
	copy(v, r.b[r.off:])
	r.off = len(r.b)
	return v
}

// fixedString reads an n-byte NUL-padded string field.
func (r *reader) fixedString(n int) string {
	b := r.bytes(n)
	if b == nil {
		return ""
	}
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}
