package openflow

// FlowModCommand selects the flow-table operation (ofp_flow_mod_command).
type FlowModCommand uint16

// Flow mod commands.
const (
	FlowModAdd          FlowModCommand = 0
	FlowModModify       FlowModCommand = 1
	FlowModModifyStrict FlowModCommand = 2
	FlowModDelete       FlowModCommand = 3
	FlowModDeleteStrict FlowModCommand = 4
)

// String returns the spec name of the command.
func (c FlowModCommand) String() string {
	switch c {
	case FlowModAdd:
		return "ADD"
	case FlowModModify:
		return "MODIFY"
	case FlowModModifyStrict:
		return "MODIFY_STRICT"
	case FlowModDelete:
		return "DELETE"
	case FlowModDeleteStrict:
		return "DELETE_STRICT"
	default:
		return "UNKNOWN_COMMAND"
	}
}

// Flow mod flags (ofp_flow_mod_flags).
const (
	FlowModFlagSendFlowRem  uint16 = 1 << 0
	FlowModFlagCheckOverlap uint16 = 1 << 1
	FlowModFlagEmergency    uint16 = 1 << 2
)

// FlowMod adds, modifies, or deletes flow entries (ofp_flow_mod).
type FlowMod struct {
	Match       Match
	Cookie      uint64
	Command     FlowModCommand
	IdleTimeout uint16
	HardTimeout uint16
	Priority    uint16
	BufferID    uint32
	OutPort     uint16
	Flags       uint16
	Actions     []Action
}

// Type implements Message.
func (*FlowMod) Type() Type { return TypeFlowMod }

func (m *FlowMod) marshalBody(b []byte) ([]byte, error) {
	w := writer{b: b}
	m.Match.marshal(&w)
	w.u64(m.Cookie)
	w.u16(uint16(m.Command))
	w.u16(m.IdleTimeout)
	w.u16(m.HardTimeout)
	w.u16(m.Priority)
	w.u32(m.BufferID)
	w.u16(m.OutPort)
	w.u16(m.Flags)
	marshalActions(&w, m.Actions)
	return w.b, nil
}

func (m *FlowMod) unmarshalBody(data []byte) error {
	r := reader{b: data}
	m.Match.unmarshal(&r)
	m.Cookie = r.u64()
	m.Command = FlowModCommand(r.u16())
	m.IdleTimeout = r.u16()
	m.HardTimeout = r.u16()
	m.Priority = r.u16()
	m.BufferID = r.u32()
	m.OutPort = r.u16()
	m.Flags = r.u16()
	if r.err != nil {
		return r.err
	}
	actions, err := unmarshalActions(r.rest())
	if err != nil {
		return err
	}
	m.Actions = actions
	return nil
}

// FlowRemovedReason says why a flow entry was removed
// (ofp_flow_removed_reason).
type FlowRemovedReason uint8

// Flow removal reasons.
const (
	FlowRemovedIdleTimeout FlowRemovedReason = 0
	FlowRemovedHardTimeout FlowRemovedReason = 1
	FlowRemovedDelete      FlowRemovedReason = 2
)

// String returns the spec name of the reason.
func (r FlowRemovedReason) String() string {
	switch r {
	case FlowRemovedIdleTimeout:
		return "IDLE_TIMEOUT"
	case FlowRemovedHardTimeout:
		return "HARD_TIMEOUT"
	case FlowRemovedDelete:
		return "DELETE"
	default:
		return "UNKNOWN_REASON"
	}
}

// FlowRemoved notifies the controller that a flow entry was removed
// (ofp_flow_removed).
type FlowRemoved struct {
	Match        Match
	Cookie       uint64
	Priority     uint16
	Reason       FlowRemovedReason
	DurationSec  uint32
	DurationNsec uint32
	IdleTimeout  uint16
	PacketCount  uint64
	ByteCount    uint64
}

// Type implements Message.
func (*FlowRemoved) Type() Type { return TypeFlowRemoved }

func (m *FlowRemoved) marshalBody(b []byte) ([]byte, error) {
	w := writer{b: b}
	m.Match.marshal(&w)
	w.u64(m.Cookie)
	w.u16(m.Priority)
	w.u8(uint8(m.Reason))
	w.pad(1)
	w.u32(m.DurationSec)
	w.u32(m.DurationNsec)
	w.u16(m.IdleTimeout)
	w.pad(2)
	w.u64(m.PacketCount)
	w.u64(m.ByteCount)
	return w.b, nil
}

func (m *FlowRemoved) unmarshalBody(data []byte) error {
	r := reader{b: data}
	m.Match.unmarshal(&r)
	m.Cookie = r.u64()
	m.Priority = r.u16()
	m.Reason = FlowRemovedReason(r.u8())
	r.skip(1)
	m.DurationSec = r.u32()
	m.DurationNsec = r.u32()
	m.IdleTimeout = r.u16()
	r.skip(2)
	m.PacketCount = r.u64()
	m.ByteCount = r.u64()
	return r.err
}
