package openflow

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Buffer recycling for the message hot path. Frame buffers circulate
// through channels (injector sessions, switch and controller write pumps),
// so a bare sync.Pool of []byte would pay one slice-header allocation per
// Put (the &b box escapes). The pool here layers a lock-free channel
// free-list in front of a sync.Pool: the free-list serves the steady state
// with zero allocations of any kind, and the sync.Pool absorbs overflow so
// bursts beyond the free-list's capacity still amortize under GC pressure
// instead of being dropped.
const (
	// poolBufferCap is the initial capacity of a fresh pooled buffer —
	// enough for every fixed-size OpenFlow 1.0 message and typical
	// PACKET_IN/PACKET_OUT frames without growing.
	poolBufferCap = 256
	// poolRetainMax bounds the capacity of buffers the pool retains, so a
	// burst of maximum-length frames cannot pin megabytes forever.
	poolRetainMax = 1 << 14
	// poolFreeListLen sizes the channel free-list. It exceeds the deepest
	// per-session write queue so a full pipeline can circulate entirely
	// through the free-list.
	poolFreeListLen = 8192
)

var (
	bufFreeList = make(chan []byte, poolFreeListLen)
	bufOverflow = sync.Pool{New: func() any { b := make([]byte, 0, poolBufferCap); return &b }}
)

// GetBuffer returns an empty buffer for reading or marshalling one framed
// message. Return it with PutBuffer when the bytes are no longer referenced
// by anyone (see the ownership rules in DESIGN.md).
func GetBuffer() []byte {
	select {
	case b := <-bufFreeList:
		return b[:0]
	default:
	}
	return (*bufOverflow.Get().(*[]byte))[:0]
}

// PutBuffer recycles a buffer obtained from GetBuffer. Foreign buffers are
// absorbed too (the pool only cares about capacity), so delivery pipelines
// may unconditionally recycle every frame they finish writing. Oversized
// and zero-capacity buffers are dropped. PutBuffer of nil is a no-op.
func PutBuffer(b []byte) {
	if cap(b) < HeaderLen || cap(b) > poolRetainMax {
		return
	}
	b = b[:0]
	select {
	case bufFreeList <- b:
	default:
		putOverflow(b)
	}
}

// putOverflow hands a buffer to the sync.Pool. Kept out of PutBuffer (and
// out of its inliner) so the &b escape only costs an allocation on the
// overflow path, not on every free-list Put.
//
//go:noinline
func putOverflow(b []byte) {
	bufOverflow.Put(&b)
}

// ReadRawInto reads exactly one framed OpenFlow message from r into buf,
// growing it if needed, and returns the frame (header included, len equal
// to the header's length field). The result aliases buf's backing array
// whenever its capacity sufficed; pass the result back in on the next call
// to reuse it. On error the returned slice is still the caller's buffer
// (possibly grown, contents undefined) so it can be recycled.
func ReadRawInto(r io.Reader, buf []byte) ([]byte, error) {
	if cap(buf) < HeaderLen {
		buf = make([]byte, 0, poolBufferCap)
	}
	buf = buf[:HeaderLen]
	if _, err := io.ReadFull(r, buf); err != nil {
		return buf, err
	}
	length := int(binary.BigEndian.Uint16(buf[2:4]))
	if length < HeaderLen {
		return buf, ErrBadLength
	}
	if length > cap(buf) {
		grown := make([]byte, length)
		copy(grown, buf[:HeaderLen])
		buf = grown
	} else {
		buf = buf[:length]
	}
	if _, err := io.ReadFull(r, buf[HeaderLen:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return buf, err
	}
	return buf, nil
}

// MessageReader decodes successive framed messages from one stream,
// recycling a single read buffer across calls — the steady state performs
// no per-message buffer allocation. Decoded messages never alias the
// internal buffer (Unmarshal copies variable-length fields), so they may
// outlive the next Read.
type MessageReader struct {
	r   io.Reader
	buf []byte
}

// NewMessageReader wraps r with a pooled read buffer. Call Close when done
// with the stream to recycle it.
func NewMessageReader(r io.Reader) *MessageReader {
	return &MessageReader{r: r, buf: GetBuffer()}
}

// Read reads and decodes the next message.
func (mr *MessageReader) Read() (Header, Message, error) {
	raw, err := ReadRawInto(mr.r, mr.buf)
	mr.buf = raw
	if err != nil {
		return Header{}, nil, err
	}
	return Unmarshal(raw)
}

// Close recycles the reader's buffer. The reader must not be used after.
func (mr *MessageReader) Close() {
	PutBuffer(mr.buf)
	mr.buf = nil
}

// AppendMessage appends the framed encoding of msg (with the given
// transaction id) to b and returns the extended slice — Marshal without
// the per-message allocation, for callers writing into pooled buffers. On
// error b is returned truncated to its original length.
func AppendMessage(b []byte, xid uint32, msg Message) ([]byte, error) {
	start := len(b)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0)
	b, err := msg.marshalBody(b)
	if err != nil {
		return b[:start], fmt.Errorf("marshal %s: %w", msg.Type(), err)
	}
	frameLen := len(b) - start
	if frameLen > MaxMessageLen {
		return b[:start], fmt.Errorf("marshal %s: message length %d exceeds maximum: %w", msg.Type(), frameLen, ErrBadLength)
	}
	hdr := b[start:]
	hdr[0] = Version
	hdr[1] = uint8(msg.Type())
	binary.BigEndian.PutUint16(hdr[2:4], uint16(frameLen))
	binary.BigEndian.PutUint32(hdr[4:8], xid)
	return b, nil
}
