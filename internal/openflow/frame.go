package openflow

import (
	"encoding/binary"
	"fmt"
)

// Frame is a lazy, zero-copy view over one framed OpenFlow message. It
// wraps the raw wire bytes and answers header and fixed-offset body
// questions without materializing a typed Message, so the injector's hot
// path can evaluate rule conditionals against forwarded traffic and still
// pass the original bytes through verbatim. Materialize is the escape
// hatch back to the typed codec for the rare message a rule rewrites.
//
// A Frame aliases the buffer it was created over and is valid only as long
// as the caller owns those bytes; see the pooling ownership rules in
// DESIGN.md. The zero Frame is invalid and every accessor on it reports
// failure.
type Frame struct {
	data []byte
}

// NewFrame validates the header framing of data (version, known type,
// plausible length) and returns a view over it. The view spans exactly the
// framed message: trailing bytes beyond the header's length field are
// excluded, mirroring Unmarshal. Body contents are not validated — that is
// exactly the laziness the type exists for.
func NewFrame(data []byte) (Frame, error) {
	if len(data) < HeaderLen {
		return Frame{}, ErrTruncated
	}
	if data[0] != Version {
		return Frame{}, fmt.Errorf("version %d: %w", data[0], ErrBadVersion)
	}
	length := int(binary.BigEndian.Uint16(data[2:4]))
	if length < HeaderLen {
		return Frame{}, ErrBadLength
	}
	if length > len(data) {
		return Frame{}, ErrTruncated
	}
	if _, ok := typeNames[Type(data[1])]; !ok {
		return Frame{}, fmt.Errorf("type %d: %w", data[1], ErrUnknownType)
	}
	return Frame{data: data[:length]}, nil
}

// Valid reports whether the frame views any bytes.
func (f Frame) Valid() bool { return len(f.data) >= HeaderLen }

// Bytes returns the underlying wire bytes (header included). The slice
// aliases the frame's buffer; callers must not retain it past the buffer's
// ownership window.
func (f Frame) Bytes() []byte { return f.data }

// Version returns the header version byte.
func (f Frame) Version() uint8 {
	if !f.Valid() {
		return 0
	}
	return f.data[0]
}

// Type returns the message type from the header.
func (f Frame) Type() Type {
	if !f.Valid() {
		return 0
	}
	return Type(f.data[1])
}

// Len returns the framed length (== len(Bytes())).
func (f Frame) Len() int { return len(f.data) }

// Xid returns the transaction id from the header.
func (f Frame) Xid() uint32 {
	if !f.Valid() {
		return 0
	}
	return binary.BigEndian.Uint32(f.data[4:8])
}

// Body returns the bytes after the 8-byte header.
func (f Frame) Body() []byte {
	if !f.Valid() {
		return nil
	}
	return f.data[HeaderLen:]
}

// Materialize decodes the frame into the typed message structs — the
// escape hatch for code that needs to mutate or deeply inspect a message.
// It costs a full Unmarshal (and its allocations); the returned Message
// never aliases the frame's buffer.
func (f Frame) Materialize() (Header, Message, error) {
	return Unmarshal(f.data)
}

// body returns the body only if it is at least n bytes long.
func (f Frame) body(t Type, n int) ([]byte, bool) {
	if !f.Valid() || Type(f.data[1]) != t || len(f.data) < HeaderLen+n {
		return nil, false
	}
	return f.data[HeaderLen:], true
}

// Fixed-offset sizes of the message bodies the accessors below read.
// flowModFixedLen is ofp_flow_mod up to and including flags (the action
// list follows); packetInFixedLen is ofp_packet_in up to the packet data;
// packetOutFixedLen is ofp_packet_out up to the action list.
const (
	flowModFixedLen     = matchLen + 24
	flowRemovedFixedLen = matchLen + 40
	packetInFixedLen    = 10
	packetOutFixedLen   = 8
)

// FlowModCommand returns the command of a FLOW_MOD frame.
func (f Frame) FlowModCommand() (FlowModCommand, bool) {
	b, ok := f.body(TypeFlowMod, flowModFixedLen)
	if !ok {
		return 0, false
	}
	return FlowModCommand(binary.BigEndian.Uint16(b[48:50])), true
}

// FlowModIdleTimeout returns the idle timeout of a FLOW_MOD frame.
func (f Frame) FlowModIdleTimeout() (uint16, bool) {
	b, ok := f.body(TypeFlowMod, flowModFixedLen)
	if !ok {
		return 0, false
	}
	return binary.BigEndian.Uint16(b[50:52]), true
}

// FlowModHardTimeout returns the hard timeout of a FLOW_MOD frame.
func (f Frame) FlowModHardTimeout() (uint16, bool) {
	b, ok := f.body(TypeFlowMod, flowModFixedLen)
	if !ok {
		return 0, false
	}
	return binary.BigEndian.Uint16(b[52:54]), true
}

// FlowModPriority returns the priority of a FLOW_MOD frame.
func (f Frame) FlowModPriority() (uint16, bool) {
	b, ok := f.body(TypeFlowMod, flowModFixedLen)
	if !ok {
		return 0, false
	}
	return binary.BigEndian.Uint16(b[54:56]), true
}

// FlowModBufferID returns the buffer id of a FLOW_MOD frame.
func (f Frame) FlowModBufferID() (uint32, bool) {
	b, ok := f.body(TypeFlowMod, flowModFixedLen)
	if !ok {
		return 0, false
	}
	return binary.BigEndian.Uint32(b[56:60]), true
}

// FlowModOutPort returns the out_port of a FLOW_MOD frame.
func (f Frame) FlowModOutPort() (uint16, bool) {
	b, ok := f.body(TypeFlowMod, flowModFixedLen)
	if !ok {
		return 0, false
	}
	return binary.BigEndian.Uint16(b[60:62]), true
}

// FlowModCookie returns the cookie of a FLOW_MOD frame.
func (f Frame) FlowModCookie() (uint64, bool) {
	b, ok := f.body(TypeFlowMod, flowModFixedLen)
	if !ok {
		return 0, false
	}
	return binary.BigEndian.Uint64(b[40:48]), true
}

// Match returns the ofp_match of a FLOW_MOD or FLOW_REMOVED frame (both
// carry it at body offset 0), decoded without allocating.
func (f Frame) Match() (Match, bool) {
	if !f.Valid() || len(f.data) < HeaderLen+matchLen {
		return Match{}, false
	}
	t := Type(f.data[1])
	if t != TypeFlowMod && t != TypeFlowRemoved {
		return Match{}, false
	}
	return decodeMatch(f.data[HeaderLen:]), true
}

// PacketInBufferID returns the buffer id of a PACKET_IN frame.
func (f Frame) PacketInBufferID() (uint32, bool) {
	b, ok := f.body(TypePacketIn, packetInFixedLen)
	if !ok {
		return 0, false
	}
	return binary.BigEndian.Uint32(b[0:4]), true
}

// PacketInTotalLen returns the total_len of a PACKET_IN frame.
func (f Frame) PacketInTotalLen() (uint16, bool) {
	b, ok := f.body(TypePacketIn, packetInFixedLen)
	if !ok {
		return 0, false
	}
	return binary.BigEndian.Uint16(b[4:6]), true
}

// PacketInInPort returns the in_port of a PACKET_IN frame.
func (f Frame) PacketInInPort() (uint16, bool) {
	b, ok := f.body(TypePacketIn, packetInFixedLen)
	if !ok {
		return 0, false
	}
	return binary.BigEndian.Uint16(b[6:8]), true
}

// PacketInReason returns the reason of a PACKET_IN frame.
func (f Frame) PacketInReason() (PacketInReason, bool) {
	b, ok := f.body(TypePacketIn, packetInFixedLen)
	if !ok {
		return 0, false
	}
	return PacketInReason(b[8]), true
}

// PacketInData returns the packet bytes of a PACKET_IN frame. The slice
// aliases the frame's buffer.
func (f Frame) PacketInData() ([]byte, bool) {
	b, ok := f.body(TypePacketIn, packetInFixedLen)
	if !ok {
		return nil, false
	}
	return b[packetInFixedLen:], true
}

// PacketOutBufferID returns the buffer id of a PACKET_OUT frame.
func (f Frame) PacketOutBufferID() (uint32, bool) {
	b, ok := f.body(TypePacketOut, packetOutFixedLen)
	if !ok {
		return 0, false
	}
	return binary.BigEndian.Uint32(b[0:4]), true
}

// PacketOutInPort returns the in_port of a PACKET_OUT frame.
func (f Frame) PacketOutInPort() (uint16, bool) {
	b, ok := f.body(TypePacketOut, packetOutFixedLen)
	if !ok {
		return 0, false
	}
	return binary.BigEndian.Uint16(b[4:6]), true
}

// EchoData returns the opaque payload of an ECHO_REQUEST or ECHO_REPLY
// frame. The slice aliases the frame's buffer.
func (f Frame) EchoData() ([]byte, bool) {
	if !f.Valid() {
		return nil, false
	}
	t := Type(f.data[1])
	if t != TypeEchoRequest && t != TypeEchoReply {
		return nil, false
	}
	return f.data[HeaderLen:], true
}

// decodeMatch parses a 40-byte ofp_match region without allocating.
// b must be at least matchLen bytes.
func decodeMatch(b []byte) Match {
	var m Match
	m.Wildcards = binary.BigEndian.Uint32(b[0:4])
	m.InPort = binary.BigEndian.Uint16(b[4:6])
	copy(m.DLSrc[:], b[6:12])
	copy(m.DLDst[:], b[12:18])
	m.DLVLAN = binary.BigEndian.Uint16(b[18:20])
	m.DLVLANPCP = b[20]
	// b[21] is padding.
	m.DLType = binary.BigEndian.Uint16(b[22:24])
	m.NWTOS = b[24]
	m.NWProto = b[25]
	// b[26:28] is padding.
	copy(m.NWSrc[:], b[28:32])
	copy(m.NWDst[:], b[32:36])
	m.TPSrc = binary.BigEndian.Uint16(b[36:38])
	m.TPDst = binary.BigEndian.Uint16(b[38:40])
	return m
}
