package openflow

import "fmt"

// StatsType identifies a statistics request/reply kind (ofp_stats_types).
type StatsType uint16

// Statistics types.
const (
	StatsTypeDesc      StatsType = 0
	StatsTypeFlow      StatsType = 1
	StatsTypeAggregate StatsType = 2
	StatsTypeTable     StatsType = 3
	StatsTypePort      StatsType = 4
	StatsTypeQueue     StatsType = 5
	StatsTypeVendor    StatsType = 0xffff
)

// StatsReplyFlagMore marks a multipart reply with more parts coming.
const StatsReplyFlagMore uint16 = 1 << 0

// StatsBody is a typed statistics request or reply body.
type StatsBody interface {
	StatsType() StatsType
	marshal(w *writer)
	unmarshal(data []byte) error
}

// DescStatsRequest asks for switch description strings.
type DescStatsRequest struct{}

// DescStatsReply carries switch description strings (ofp_desc_stats).
type DescStatsReply struct {
	MfrDesc   string
	HWDesc    string
	SWDesc    string
	SerialNum string
	DPDesc    string
}

// FlowStatsRequest asks for per-flow statistics (ofp_flow_stats_request).
type FlowStatsRequest struct {
	Match   Match
	TableID uint8
	OutPort uint16
}

// FlowStatsEntry is one flow in a flow-stats reply (ofp_flow_stats).
type FlowStatsEntry struct {
	TableID      uint8
	Match        Match
	DurationSec  uint32
	DurationNsec uint32
	Priority     uint16
	IdleTimeout  uint16
	HardTimeout  uint16
	Cookie       uint64
	PacketCount  uint64
	ByteCount    uint64
	Actions      []Action
}

// FlowStatsReply lists matching flows.
type FlowStatsReply struct{ Flows []FlowStatsEntry }

// AggregateStatsRequest asks for aggregate statistics over matching flows.
type AggregateStatsRequest struct {
	Match   Match
	TableID uint8
	OutPort uint16
}

// AggregateStatsReply carries aggregate flow statistics.
type AggregateStatsReply struct {
	PacketCount uint64
	ByteCount   uint64
	FlowCount   uint32
}

// TableStatsRequest asks for per-table statistics.
type TableStatsRequest struct{}

// TableStatsEntry is one table in a table-stats reply (ofp_table_stats).
type TableStatsEntry struct {
	TableID      uint8
	Name         string
	Wildcards    uint32
	MaxEntries   uint32
	ActiveCount  uint32
	LookupCount  uint64
	MatchedCount uint64
}

// TableStatsReply lists flow tables.
type TableStatsReply struct{ Tables []TableStatsEntry }

// PortStatsRequest asks for per-port counters; PortNone means all ports.
type PortStatsRequest struct{ PortNo uint16 }

// PortStatsEntry is one port in a port-stats reply (ofp_port_stats).
type PortStatsEntry struct {
	PortNo     uint16
	RxPackets  uint64
	TxPackets  uint64
	RxBytes    uint64
	TxBytes    uint64
	RxDropped  uint64
	TxDropped  uint64
	RxErrors   uint64
	TxErrors   uint64
	RxFrameErr uint64
	RxOverErr  uint64
	RxCRCErr   uint64
	Collisions uint64
}

// PortStatsReply lists port counters.
type PortStatsReply struct{ Ports []PortStatsEntry }

// StatsType implementations.
func (DescStatsRequest) StatsType() StatsType       { return StatsTypeDesc }
func (*DescStatsReply) StatsType() StatsType        { return StatsTypeDesc }
func (*FlowStatsRequest) StatsType() StatsType      { return StatsTypeFlow }
func (*FlowStatsReply) StatsType() StatsType        { return StatsTypeFlow }
func (*AggregateStatsRequest) StatsType() StatsType { return StatsTypeAggregate }
func (*AggregateStatsReply) StatsType() StatsType   { return StatsTypeAggregate }
func (TableStatsRequest) StatsType() StatsType      { return StatsTypeTable }
func (*TableStatsReply) StatsType() StatsType       { return StatsTypeTable }
func (*PortStatsRequest) StatsType() StatsType      { return StatsTypePort }
func (*PortStatsReply) StatsType() StatsType        { return StatsTypePort }

func (DescStatsRequest) marshal(w *writer)           {}
func (DescStatsRequest) unmarshal(data []byte) error { return nil }

func (m *DescStatsReply) marshal(w *writer) {
	w.fixedString(m.MfrDesc, 256)
	w.fixedString(m.HWDesc, 256)
	w.fixedString(m.SWDesc, 256)
	w.fixedString(m.SerialNum, 32)
	w.fixedString(m.DPDesc, 256)
}

func (m *DescStatsReply) unmarshal(data []byte) error {
	r := reader{b: data}
	m.MfrDesc = r.fixedString(256)
	m.HWDesc = r.fixedString(256)
	m.SWDesc = r.fixedString(256)
	m.SerialNum = r.fixedString(32)
	m.DPDesc = r.fixedString(256)
	return r.err
}

func (m *FlowStatsRequest) marshal(w *writer) {
	m.Match.marshal(w)
	w.u8(m.TableID)
	w.pad(1)
	w.u16(m.OutPort)
}

func (m *FlowStatsRequest) unmarshal(data []byte) error {
	r := reader{b: data}
	m.Match.unmarshal(&r)
	m.TableID = r.u8()
	r.skip(1)
	m.OutPort = r.u16()
	return r.err
}

func (m *FlowStatsReply) marshal(w *writer) {
	for _, f := range m.Flows {
		lenAt := len(w.b)
		w.u16(0) // length placeholder
		w.u8(f.TableID)
		w.pad(1)
		f.Match.marshal(w)
		w.u32(f.DurationSec)
		w.u32(f.DurationNsec)
		w.u16(f.Priority)
		w.u16(f.IdleTimeout)
		w.u16(f.HardTimeout)
		w.pad(6)
		w.u64(f.Cookie)
		w.u64(f.PacketCount)
		w.u64(f.ByteCount)
		marshalActions(w, f.Actions)
		entryLen := len(w.b) - lenAt
		w.b[lenAt] = byte(entryLen >> 8)
		w.b[lenAt+1] = byte(entryLen)
	}
}

func (m *FlowStatsReply) unmarshal(data []byte) error {
	m.Flows = nil
	for len(data) > 0 {
		if len(data) < 2 {
			return ErrTruncated
		}
		entryLen := int(uint16(data[0])<<8 | uint16(data[1]))
		if entryLen < 88 || entryLen > len(data) {
			return fmt.Errorf("flow stats entry length %d: %w", entryLen, ErrBadLength)
		}
		r := reader{b: data[2:entryLen]}
		var f FlowStatsEntry
		f.TableID = r.u8()
		r.skip(1)
		f.Match.unmarshal(&r)
		f.DurationSec = r.u32()
		f.DurationNsec = r.u32()
		f.Priority = r.u16()
		f.IdleTimeout = r.u16()
		f.HardTimeout = r.u16()
		r.skip(6)
		f.Cookie = r.u64()
		f.PacketCount = r.u64()
		f.ByteCount = r.u64()
		if r.err != nil {
			return r.err
		}
		actions, err := unmarshalActions(r.rest())
		if err != nil {
			return err
		}
		f.Actions = actions
		m.Flows = append(m.Flows, f)
		data = data[entryLen:]
	}
	return nil
}

func (m *AggregateStatsRequest) marshal(w *writer) {
	m.Match.marshal(w)
	w.u8(m.TableID)
	w.pad(1)
	w.u16(m.OutPort)
}

func (m *AggregateStatsRequest) unmarshal(data []byte) error {
	r := reader{b: data}
	m.Match.unmarshal(&r)
	m.TableID = r.u8()
	r.skip(1)
	m.OutPort = r.u16()
	return r.err
}

func (m *AggregateStatsReply) marshal(w *writer) {
	w.u64(m.PacketCount)
	w.u64(m.ByteCount)
	w.u32(m.FlowCount)
	w.pad(4)
}

func (m *AggregateStatsReply) unmarshal(data []byte) error {
	r := reader{b: data}
	m.PacketCount = r.u64()
	m.ByteCount = r.u64()
	m.FlowCount = r.u32()
	r.skip(4)
	return r.err
}

func (TableStatsRequest) marshal(w *writer)           {}
func (TableStatsRequest) unmarshal(data []byte) error { return nil }

func (m *TableStatsReply) marshal(w *writer) {
	for _, t := range m.Tables {
		w.u8(t.TableID)
		w.pad(3)
		w.fixedString(t.Name, 32)
		w.u32(t.Wildcards)
		w.u32(t.MaxEntries)
		w.u32(t.ActiveCount)
		w.u64(t.LookupCount)
		w.u64(t.MatchedCount)
	}
}

func (m *TableStatsReply) unmarshal(data []byte) error {
	const entryLen = 64
	if len(data)%entryLen != 0 {
		return ErrBadLength
	}
	m.Tables = nil
	r := reader{b: data}
	for r.remaining() > 0 {
		var t TableStatsEntry
		t.TableID = r.u8()
		r.skip(3)
		t.Name = r.fixedString(32)
		t.Wildcards = r.u32()
		t.MaxEntries = r.u32()
		t.ActiveCount = r.u32()
		t.LookupCount = r.u64()
		t.MatchedCount = r.u64()
		m.Tables = append(m.Tables, t)
	}
	return r.err
}

func (m *PortStatsRequest) marshal(w *writer) {
	w.u16(m.PortNo)
	w.pad(6)
}

func (m *PortStatsRequest) unmarshal(data []byte) error {
	r := reader{b: data}
	m.PortNo = r.u16()
	r.skip(6)
	return r.err
}

func (m *PortStatsReply) marshal(w *writer) {
	for _, p := range m.Ports {
		w.u16(p.PortNo)
		w.pad(6)
		w.u64(p.RxPackets)
		w.u64(p.TxPackets)
		w.u64(p.RxBytes)
		w.u64(p.TxBytes)
		w.u64(p.RxDropped)
		w.u64(p.TxDropped)
		w.u64(p.RxErrors)
		w.u64(p.TxErrors)
		w.u64(p.RxFrameErr)
		w.u64(p.RxOverErr)
		w.u64(p.RxCRCErr)
		w.u64(p.Collisions)
	}
}

func (m *PortStatsReply) unmarshal(data []byte) error {
	const entryLen = 104
	if len(data)%entryLen != 0 {
		return ErrBadLength
	}
	m.Ports = nil
	r := reader{b: data}
	for r.remaining() > 0 {
		var p PortStatsEntry
		p.PortNo = r.u16()
		r.skip(6)
		p.RxPackets = r.u64()
		p.TxPackets = r.u64()
		p.RxBytes = r.u64()
		p.TxBytes = r.u64()
		p.RxDropped = r.u64()
		p.TxDropped = r.u64()
		p.RxErrors = r.u64()
		p.TxErrors = r.u64()
		p.RxFrameErr = r.u64()
		p.RxOverErr = r.u64()
		p.RxCRCErr = r.u64()
		p.Collisions = r.u64()
		m.Ports = append(m.Ports, p)
	}
	return r.err
}

// StatsRequest wraps a typed statistics request (ofp_stats_request).
type StatsRequest struct {
	Flags uint16
	Body  StatsBody
}

// StatsReply wraps a typed statistics reply (ofp_stats_reply).
type StatsReply struct {
	Flags uint16
	Body  StatsBody
}

// Type implements Message.
func (*StatsRequest) Type() Type { return TypeStatsRequest }

// Type implements Message.
func (*StatsReply) Type() Type { return TypeStatsReply }

func (m *StatsRequest) marshalBody(b []byte) ([]byte, error) {
	if m.Body == nil {
		return nil, fmt.Errorf("stats request has no body")
	}
	w := writer{b: b}
	w.u16(uint16(m.Body.StatsType()))
	w.u16(m.Flags)
	m.Body.marshal(&w)
	return w.b, nil
}

func (m *StatsRequest) unmarshalBody(data []byte) error {
	r := reader{b: data}
	st := StatsType(r.u16())
	m.Flags = r.u16()
	if r.err != nil {
		return r.err
	}
	body, err := newStatsBody(st, true)
	if err != nil {
		return err
	}
	if err := body.unmarshal(r.rest()); err != nil {
		return err
	}
	m.Body = body
	return nil
}

func (m *StatsReply) marshalBody(b []byte) ([]byte, error) {
	if m.Body == nil {
		return nil, fmt.Errorf("stats reply has no body")
	}
	w := writer{b: b}
	w.u16(uint16(m.Body.StatsType()))
	w.u16(m.Flags)
	m.Body.marshal(&w)
	return w.b, nil
}

func (m *StatsReply) unmarshalBody(data []byte) error {
	r := reader{b: data}
	st := StatsType(r.u16())
	m.Flags = r.u16()
	if r.err != nil {
		return r.err
	}
	body, err := newStatsBody(st, false)
	if err != nil {
		return err
	}
	if err := body.unmarshal(r.rest()); err != nil {
		return err
	}
	m.Body = body
	return nil
}

func newStatsBody(st StatsType, request bool) (StatsBody, error) {
	switch st {
	case StatsTypeDesc:
		if request {
			return DescStatsRequest{}, nil
		}
		return &DescStatsReply{}, nil
	case StatsTypeFlow:
		if request {
			return &FlowStatsRequest{}, nil
		}
		return &FlowStatsReply{}, nil
	case StatsTypeAggregate:
		if request {
			return &AggregateStatsRequest{}, nil
		}
		return &AggregateStatsReply{}, nil
	case StatsTypeTable:
		if request {
			return TableStatsRequest{}, nil
		}
		return &TableStatsReply{}, nil
	case StatsTypePort:
		if request {
			return &PortStatsRequest{}, nil
		}
		return &PortStatsReply{}, nil
	default:
		return nil, fmt.Errorf("stats type %d: %w", uint16(st), ErrUnknownType)
	}
}
