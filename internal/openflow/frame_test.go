package openflow

import (
	"bytes"
	"io"
	"testing"
)

func mustFrame(t *testing.T, xid uint32, msg Message) Frame {
	t.Helper()
	raw, err := Marshal(xid, msg)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := NewFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

func TestFrameHeaderAccessors(t *testing.T) {
	fr := mustFrame(t, 0xdeadbeef, &EchoRequest{Data: []byte("ping")})
	if fr.Version() != Version || fr.Type() != TypeEchoRequest {
		t.Fatalf("header accessors: version=%d type=%s", fr.Version(), fr.Type())
	}
	if fr.Xid() != 0xdeadbeef {
		t.Fatalf("xid = %#x", fr.Xid())
	}
	if fr.Len() != HeaderLen+4 || len(fr.Body()) != 4 {
		t.Fatalf("len = %d body = %d", fr.Len(), len(fr.Body()))
	}
	if data, ok := fr.EchoData(); !ok || string(data) != "ping" {
		t.Fatalf("echo data = %q ok=%v", data, ok)
	}
}

func TestFrameFlowModAccessors(t *testing.T) {
	fm := &FlowMod{
		Match:       ExactFrom(FieldView{InPort: 3, DLType: 0x0800, NWProto: 6, TPSrc: 80, TPDst: 443}),
		Cookie:      0x1122334455667788,
		Command:     FlowModModifyStrict,
		IdleTimeout: 60,
		HardTimeout: 600,
		Priority:    32768,
		BufferID:    NoBuffer,
		OutPort:     PortNone,
		Actions:     []Action{ActionOutput{Port: 2}},
	}
	fr := mustFrame(t, 1, fm)
	check := func(name string, got, want any, ok bool) {
		t.Helper()
		if !ok || got != want {
			t.Errorf("%s = %v (ok=%v), want %v", name, got, ok, want)
		}
	}
	cmd, ok := fr.FlowModCommand()
	check("command", cmd, fm.Command, ok)
	idle, ok := fr.FlowModIdleTimeout()
	check("idle", idle, fm.IdleTimeout, ok)
	hard, ok := fr.FlowModHardTimeout()
	check("hard", hard, fm.HardTimeout, ok)
	prio, ok := fr.FlowModPriority()
	check("priority", prio, fm.Priority, ok)
	buf, ok := fr.FlowModBufferID()
	check("buffer_id", buf, fm.BufferID, ok)
	out, ok := fr.FlowModOutPort()
	check("out_port", out, fm.OutPort, ok)
	cookie, ok := fr.FlowModCookie()
	check("cookie", cookie, fm.Cookie, ok)
	match, ok := fr.Match()
	if !ok || match != fm.Match {
		t.Errorf("match = %+v (ok=%v), want %+v", match, ok, fm.Match)
	}
}

func TestFramePacketAccessors(t *testing.T) {
	pi := &PacketIn{BufferID: 42, TotalLen: 99, InPort: 7, Reason: PacketInReasonAction, Data: []byte{1, 2, 3}}
	fr := mustFrame(t, 2, pi)
	if v, ok := fr.PacketInBufferID(); !ok || v != 42 {
		t.Errorf("packet_in buffer_id = %d ok=%v", v, ok)
	}
	if v, ok := fr.PacketInTotalLen(); !ok || v != 99 {
		t.Errorf("packet_in total_len = %d ok=%v", v, ok)
	}
	if v, ok := fr.PacketInInPort(); !ok || v != 7 {
		t.Errorf("packet_in in_port = %d ok=%v", v, ok)
	}
	if v, ok := fr.PacketInReason(); !ok || v != PacketInReasonAction {
		t.Errorf("packet_in reason = %s ok=%v", v, ok)
	}
	if d, ok := fr.PacketInData(); !ok || !bytes.Equal(d, pi.Data) {
		t.Errorf("packet_in data = %x ok=%v", d, ok)
	}

	po := &PacketOut{BufferID: NoBuffer, InPort: 5, Actions: []Action{ActionOutput{Port: 1}}}
	fro := mustFrame(t, 3, po)
	if v, ok := fro.PacketOutBufferID(); !ok || v != NoBuffer {
		t.Errorf("packet_out buffer_id = %d ok=%v", v, ok)
	}
	if v, ok := fro.PacketOutInPort(); !ok || v != 5 {
		t.Errorf("packet_out in_port = %d ok=%v", v, ok)
	}

	// Wrong-type and truncated-body lookups fail cleanly.
	if _, ok := fro.PacketInBufferID(); ok {
		t.Error("PacketInBufferID succeeded on a PACKET_OUT frame")
	}
	if _, ok := fr.Match(); ok {
		t.Error("Match succeeded on a PACKET_IN frame")
	}
	short := []byte{Version, byte(TypePacketIn), 0, 12, 0, 0, 0, 1, 0, 0, 0, 0}
	sf, err := NewFrame(short)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sf.PacketInReason(); ok {
		t.Error("PacketInReason succeeded on a truncated body")
	}
	var zero Frame
	if zero.Valid() || zero.Type() != 0 || zero.Body() != nil {
		t.Error("zero Frame is not inert")
	}
}

// TestFrameAccessorsZeroAlloc pins the tentpole invariant: building a view
// and reading header and match fields through it never allocates.
func TestFrameAccessorsZeroAlloc(t *testing.T) {
	fm := &FlowMod{Match: MatchAll(), BufferID: NoBuffer, OutPort: PortNone,
		Actions: []Action{ActionOutput{Port: 1}}}
	raw, err := Marshal(7, fm)
	if err != nil {
		t.Fatal(err)
	}
	var sink uint64
	allocs := testing.AllocsPerRun(1000, func() {
		fr, err := NewFrame(raw)
		if err != nil {
			t.Fatal(err)
		}
		sink += uint64(fr.Xid()) + uint64(fr.Type()) + uint64(fr.Len())
		m, ok := fr.Match()
		if !ok {
			t.Fatal("no match")
		}
		sink += uint64(m.Wildcards)
		cmd, _ := fr.FlowModCommand()
		sink += uint64(cmd)
		prio, _ := fr.FlowModPriority()
		sink += uint64(prio)
		bid, _ := fr.FlowModBufferID()
		sink += uint64(bid)
	})
	if allocs != 0 {
		t.Fatalf("frame accessors allocate: %v allocs/op (sink %d)", allocs, sink)
	}
}

// TestReadRawIntoZeroAllocSteadyState pins that re-reading frames into a
// recycled buffer does not allocate once the buffer has grown to fit.
func TestReadRawIntoZeroAllocSteadyState(t *testing.T) {
	raw, err := Marshal(1, &PacketIn{BufferID: NoBuffer, InPort: 1, Data: bytes.Repeat([]byte{0xab}, 100)})
	if err != nil {
		t.Fatal(err)
	}
	stream := bytes.NewReader(nil)
	buf := GetBuffer()
	allocs := testing.AllocsPerRun(1000, func() {
		stream.Reset(raw)
		buf, err = ReadRawInto(stream, buf)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ReadRawInto allocates in steady state: %v allocs/op", allocs)
	}
	if !bytes.Equal(buf, raw) {
		t.Fatal("ReadRawInto corrupted the frame")
	}
	PutBuffer(buf)
}

func TestReadRawIntoGrowsAndErrors(t *testing.T) {
	big, err := Marshal(1, &EchoRequest{Data: bytes.Repeat([]byte{1}, 1000)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadRawInto(bytes.NewReader(big), make([]byte, 0, 16))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("grown read corrupted the frame")
	}

	if _, err := ReadRawInto(bytes.NewReader(big[:4]), nil); err != io.ErrUnexpectedEOF {
		t.Fatalf("short header err = %v", err)
	}
	if _, err := ReadRawInto(bytes.NewReader(big[:20]), nil); err != io.ErrUnexpectedEOF {
		t.Fatalf("short body err = %v", err)
	}
	bad := append([]byte(nil), big...)
	bad[2], bad[3] = 0, 3
	if _, err := ReadRawInto(bytes.NewReader(bad), nil); err != ErrBadLength {
		t.Fatalf("bad length err = %v", err)
	}
}

func TestBufferPoolRoundTrip(t *testing.T) {
	b := GetBuffer()
	if len(b) != 0 || cap(b) < HeaderLen {
		t.Fatalf("GetBuffer: len=%d cap=%d", len(b), cap(b))
	}
	b = append(b, []byte("0123456789abcdef")...)
	PutBuffer(b)
	// Oversized and nil buffers must be rejected without panicking.
	PutBuffer(nil)
	PutBuffer(make([]byte, 0, poolRetainMax+1))
}
