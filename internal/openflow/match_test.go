package openflow

import (
	"strings"
	"testing"
	"testing/quick"

	"attain/internal/netaddr"
)

func samplePacket() FieldView {
	return FieldView{
		InPort: 1, DLSrc: macA, DLDst: macB, DLType: 0x0800,
		NWTOS: 0, NWProto: 6, NWSrc: ipA, NWDst: ipB, TPSrc: 1234, TPDst: 80,
	}
}

func TestMatchAllMatchesEverything(t *testing.T) {
	m := MatchAll()
	if !m.Matches(samplePacket()) {
		t.Error("MatchAll did not match a TCP packet")
	}
	if !m.Matches(FieldView{}) {
		t.Error("MatchAll did not match the zero packet")
	}
}

func TestExactMatchRoundTrip(t *testing.T) {
	f := samplePacket()
	m := ExactFrom(f)
	if !m.Matches(f) {
		t.Fatal("exact match does not match its own packet")
	}
	// Perturbing any single field must break the match.
	perturbations := []func(*FieldView){
		func(p *FieldView) { p.InPort = 9 },
		func(p *FieldView) { p.DLSrc[5] ^= 1 },
		func(p *FieldView) { p.DLDst[5] ^= 1 },
		func(p *FieldView) { p.DLVLAN = 100 },
		func(p *FieldView) { p.DLVLANPCP = 3 },
		func(p *FieldView) { p.DLType = 0x0806 },
		func(p *FieldView) { p.NWTOS = 8 },
		func(p *FieldView) { p.NWProto = 17 },
		func(p *FieldView) { p.NWSrc[3] ^= 1 },
		func(p *FieldView) { p.NWDst[3] ^= 1 },
		func(p *FieldView) { p.TPSrc = 99 },
		func(p *FieldView) { p.TPDst = 99 },
	}
	for i, perturb := range perturbations {
		g := f
		perturb(&g)
		if m.Matches(g) {
			t.Errorf("perturbation %d still matched", i)
		}
	}
}

func TestMatchSingleFieldWildcards(t *testing.T) {
	f := samplePacket()
	m := ExactFrom(f)

	// Wildcarding a field makes a mismatch in that field irrelevant.
	m2 := m
	m2.Wildcards |= WildcardInPort
	g := f
	g.InPort = 42
	if !m2.Matches(g) {
		t.Error("wildcarded in_port still compared")
	}

	m3 := m
	m3.Wildcards |= WildcardTPDst
	g = f
	g.TPDst = 8080
	if !m3.Matches(g) {
		t.Error("wildcarded tp_dst still compared")
	}
}

func TestMatchIPPrefixes(t *testing.T) {
	f := samplePacket()
	m := ExactFrom(f)
	m.SetNWSrcMaskBits(24) // match 10.0.0.0/24

	g := f
	g.NWSrc = netaddr.MustParseIPv4("10.0.0.200")
	if !m.Matches(g) {
		t.Error("/24 prefix did not match same-subnet address")
	}
	g.NWSrc = netaddr.MustParseIPv4("10.0.1.1")
	if m.Matches(g) {
		t.Error("/24 prefix matched different subnet")
	}

	m.SetNWSrcMaskBits(0) // fully wildcarded
	if !m.Matches(g) {
		t.Error("/0 prefix did not match")
	}
	if got := m.NWSrcMaskBits(); got != 0 {
		t.Errorf("NWSrcMaskBits = %d, want 0", got)
	}
}

func TestMaskBitsClamping(t *testing.T) {
	var m Match
	m.SetNWDstMaskBits(99)
	if got := m.NWDstMaskBits(); got != 32 {
		t.Errorf("NWDstMaskBits after Set(99) = %d, want 32", got)
	}
	m.SetNWDstMaskBits(-5)
	if got := m.NWDstMaskBits(); got != 0 {
		t.Errorf("NWDstMaskBits after Set(-5) = %d, want 0", got)
	}
	// Wire values > 32 also clamp.
	m.Wildcards = 63 << nwSrcShift
	if got := m.NWSrcMaskBits(); got != 0 {
		t.Errorf("NWSrcMaskBits with wire 63 = %d, want 0", got)
	}
}

func TestSubsumes(t *testing.T) {
	f := samplePacket()
	exact := ExactFrom(f)
	all := MatchAll()

	if !all.Subsumes(exact) {
		t.Error("MatchAll does not subsume exact match")
	}
	if exact.Subsumes(all) {
		t.Error("exact match subsumes MatchAll")
	}
	if !exact.Subsumes(exact) {
		t.Error("match does not subsume itself")
	}

	// dl_src-only match subsumes the exact match with the same dl_src.
	bySrc := MatchAll()
	bySrc.Wildcards &^= WildcardDLSrc
	bySrc.DLSrc = f.DLSrc
	if !bySrc.Subsumes(exact) {
		t.Error("dl_src match does not subsume exact match with same dl_src")
	}
	otherSrc := bySrc
	otherSrc.DLSrc = macB
	if otherSrc.Subsumes(exact) {
		t.Error("dl_src match subsumes exact match with different dl_src")
	}

	// /16 prefix subsumes /24 within it but not outside.
	wide := MatchAll()
	wide.NWDst = netaddr.MustParseIPv4("10.0.0.0")
	wide.SetNWDstMaskBits(16)
	narrow := MatchAll()
	narrow.NWDst = netaddr.MustParseIPv4("10.0.5.0")
	narrow.SetNWDstMaskBits(24)
	if !wide.Subsumes(narrow) {
		t.Error("/16 does not subsume contained /24")
	}
	if narrow.Subsumes(wide) {
		t.Error("/24 subsumes containing /16")
	}
	outside := MatchAll()
	outside.NWDst = netaddr.MustParseIPv4("10.9.0.0")
	outside.SetNWDstMaskBits(24)
	if wide.Subsumes(outside) {
		t.Error("/16 subsumes disjoint /24")
	}
}

// TestQuickSubsumesConsistent checks the defining property of Subsumes: if
// a.Subsumes(b) and a packet matches b, the packet must match a.
func TestQuickSubsumesConsistent(t *testing.T) {
	gen := func(seed int64) (Match, FieldView) {
		// Derive a small universe so collisions (and hence matches) are common.
		r := seed
		next := func(n int64) int {
			r = r*6364136223846793005 + 1442695040888963407
			v := (r >> 33) % n
			if v < 0 {
				v += n
			}
			return int(v)
		}
		f := FieldView{
			InPort:  uint16(next(3) + 1),
			DLType:  0x0800,
			NWProto: uint8(next(2)*11 + 6),
			TPDst:   uint16(next(3) * 100),
		}
		f.DLSrc[5] = byte(next(3))
		f.NWSrc[3] = byte(next(4))
		m := ExactFrom(f)
		// Randomly wildcard fields.
		for _, w := range []uint32{WildcardInPort, WildcardDLSrc, WildcardDLType, WildcardNWProto, WildcardTPDst} {
			if next(2) == 0 {
				m.Wildcards |= w
			}
		}
		m.SetNWSrcMaskBits(next(5) * 8)
		m.SetNWDstMaskBits(next(5) * 8)
		return m, f
	}
	f := func(seedA, seedB int64) bool {
		a, _ := gen(seedA)
		b, pkt := gen(seedB)
		if !a.Subsumes(b) {
			return true // property only constrains the subsuming case
		}
		if b.Matches(pkt) && !a.Matches(pkt) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestMatchString(t *testing.T) {
	if got := MatchAll().String(); got != "any" {
		t.Errorf("MatchAll().String() = %q, want \"any\"", got)
	}
	m := MatchAll()
	m.Wildcards &^= WildcardInPort
	m.InPort = 3
	m.NWDst = ipB
	m.SetNWDstMaskBits(32)
	s := m.String()
	for _, want := range []string{"in_port=3", "nw_dst=10.0.0.2/32"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	if strings.Contains(s, "dl_src") {
		t.Errorf("String() = %q, contains wildcarded field", s)
	}
}

func TestMatchWireRoundTrip(t *testing.T) {
	m := ExactFrom(samplePacket())
	m.SetNWSrcMaskBits(24)
	var w writer
	m.marshal(&w)
	if len(w.b) != matchLen {
		t.Fatalf("marshalled match is %d bytes, want %d", len(w.b), matchLen)
	}
	var got Match
	r := reader{b: w.b}
	got.unmarshal(&r)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if got != m {
		t.Errorf("wire round trip mismatch:\n got  %+v\n want %+v", got, m)
	}
}
