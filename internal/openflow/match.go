package openflow

import (
	"fmt"
	"strings"

	"attain/internal/netaddr"
)

// matchLen is the wire size of ofp_match.
const matchLen = 40

// Wildcard flags for ofp_match (ofp_flow_wildcards).
const (
	WildcardInPort    uint32 = 1 << 0
	WildcardDLVLAN    uint32 = 1 << 1
	WildcardDLSrc     uint32 = 1 << 2
	WildcardDLDst     uint32 = 1 << 3
	WildcardDLType    uint32 = 1 << 4
	WildcardNWProto   uint32 = 1 << 5
	WildcardTPSrc     uint32 = 1 << 6
	WildcardTPDst     uint32 = 1 << 7
	WildcardDLVLANPCP uint32 = 1 << 20
	WildcardNWTOS     uint32 = 1 << 21

	// nwSrcShift/nwDstShift position the 6-bit "number of wildcarded
	// low-order address bits" fields.
	nwSrcShift = 8
	nwDstShift = 14

	// WildcardNWSrcAll / WildcardNWDstAll wildcard the entire address.
	WildcardNWSrcAll uint32 = 32 << nwSrcShift
	WildcardNWDstAll uint32 = 32 << nwDstShift

	// WildcardAll wildcards every field.
	WildcardAll uint32 = 0x003fffff
)

// Match is the OpenFlow 1.0 ofp_match flow match structure. A field takes
// part in matching only if its wildcard bit is clear (for nw_src/nw_dst, if
// fewer than 32 low-order bits are wildcarded).
type Match struct {
	Wildcards uint32
	InPort    uint16
	DLSrc     netaddr.MAC
	DLDst     netaddr.MAC
	DLVLAN    uint16
	DLVLANPCP uint8
	DLType    uint16
	NWTOS     uint8
	NWProto   uint8
	NWSrc     netaddr.IPv4
	NWDst     netaddr.IPv4
	TPSrc     uint16
	TPDst     uint16
}

// MatchAll returns a match that matches every packet.
func MatchAll() Match { return Match{Wildcards: WildcardAll} }

// NWSrcMaskBits returns how many high-order bits of NWSrc are significant
// (32 = exact match, 0 = fully wildcarded).
func (m Match) NWSrcMaskBits() int {
	bits := int(m.Wildcards>>nwSrcShift) & 0x3f
	if bits > 32 {
		bits = 32
	}
	return 32 - bits
}

// NWDstMaskBits returns how many high-order bits of NWDst are significant.
func (m Match) NWDstMaskBits() int {
	bits := int(m.Wildcards>>nwDstShift) & 0x3f
	if bits > 32 {
		bits = 32
	}
	return 32 - bits
}

// SetNWSrcMaskBits sets the number of significant high-order NWSrc bits.
func (m *Match) SetNWSrcMaskBits(significant int) {
	if significant < 0 {
		significant = 0
	}
	if significant > 32 {
		significant = 32
	}
	m.Wildcards = (m.Wildcards &^ (uint32(0x3f) << nwSrcShift)) | (uint32(32-significant) << nwSrcShift)
}

// SetNWDstMaskBits sets the number of significant high-order NWDst bits.
func (m *Match) SetNWDstMaskBits(significant int) {
	if significant < 0 {
		significant = 0
	}
	if significant > 32 {
		significant = 32
	}
	m.Wildcards = (m.Wildcards &^ (uint32(0x3f) << nwDstShift)) | (uint32(32-significant) << nwDstShift)
}

// FieldView is the concrete header-field view of a packet used to evaluate a
// Match. It is produced by the data-plane packet parser.
type FieldView struct {
	InPort    uint16
	DLSrc     netaddr.MAC
	DLDst     netaddr.MAC
	DLVLAN    uint16
	DLVLANPCP uint8
	DLType    uint16
	NWTOS     uint8
	NWProto   uint8
	NWSrc     netaddr.IPv4
	NWDst     netaddr.IPv4
	TPSrc     uint16
	TPDst     uint16
}

// Matches reports whether the packet fields f satisfy the match, applying
// OpenFlow 1.0 wildcard semantics.
func (m Match) Matches(f FieldView) bool {
	if m.Wildcards&WildcardInPort == 0 && m.InPort != f.InPort {
		return false
	}
	if m.Wildcards&WildcardDLSrc == 0 && m.DLSrc != f.DLSrc {
		return false
	}
	if m.Wildcards&WildcardDLDst == 0 && m.DLDst != f.DLDst {
		return false
	}
	if m.Wildcards&WildcardDLVLAN == 0 && m.DLVLAN != f.DLVLAN {
		return false
	}
	if m.Wildcards&WildcardDLVLANPCP == 0 && m.DLVLANPCP != f.DLVLANPCP {
		return false
	}
	if m.Wildcards&WildcardDLType == 0 && m.DLType != f.DLType {
		return false
	}
	if m.Wildcards&WildcardNWTOS == 0 && m.NWTOS != f.NWTOS {
		return false
	}
	if m.Wildcards&WildcardNWProto == 0 && m.NWProto != f.NWProto {
		return false
	}
	if bits := m.NWSrcMaskBits(); bits > 0 {
		if m.NWSrc.MaskBits(bits) != f.NWSrc.MaskBits(bits) {
			return false
		}
	}
	if bits := m.NWDstMaskBits(); bits > 0 {
		if m.NWDst.MaskBits(bits) != f.NWDst.MaskBits(bits) {
			return false
		}
	}
	if m.Wildcards&WildcardTPSrc == 0 && m.TPSrc != f.TPSrc {
		return false
	}
	if m.Wildcards&WildcardTPDst == 0 && m.TPDst != f.TPDst {
		return false
	}
	return true
}

// ExactFrom builds a fully specified (no wildcards) match from packet
// fields.
func ExactFrom(f FieldView) Match {
	m := Match{
		InPort:    f.InPort,
		DLSrc:     f.DLSrc,
		DLDst:     f.DLDst,
		DLVLAN:    f.DLVLAN,
		DLVLANPCP: f.DLVLANPCP,
		DLType:    f.DLType,
		NWTOS:     f.NWTOS,
		NWProto:   f.NWProto,
		NWSrc:     f.NWSrc,
		NWDst:     f.NWDst,
		TPSrc:     f.TPSrc,
		TPDst:     f.TPDst,
	}
	m.SetNWSrcMaskBits(32)
	m.SetNWDstMaskBits(32)
	return m
}

// Subsumes reports whether every packet matched by other is also matched by
// m (used for DELETE non-strict flow removal semantics).
func (m Match) Subsumes(other Match) bool {
	type field struct {
		wild      uint32
		equal     bool
		otherWild bool
	}
	fields := []field{
		{WildcardInPort, m.InPort == other.InPort, other.Wildcards&WildcardInPort != 0},
		{WildcardDLSrc, m.DLSrc == other.DLSrc, other.Wildcards&WildcardDLSrc != 0},
		{WildcardDLDst, m.DLDst == other.DLDst, other.Wildcards&WildcardDLDst != 0},
		{WildcardDLVLAN, m.DLVLAN == other.DLVLAN, other.Wildcards&WildcardDLVLAN != 0},
		{WildcardDLVLANPCP, m.DLVLANPCP == other.DLVLANPCP, other.Wildcards&WildcardDLVLANPCP != 0},
		{WildcardDLType, m.DLType == other.DLType, other.Wildcards&WildcardDLType != 0},
		{WildcardNWTOS, m.NWTOS == other.NWTOS, other.Wildcards&WildcardNWTOS != 0},
		{WildcardNWProto, m.NWProto == other.NWProto, other.Wildcards&WildcardNWProto != 0},
		{WildcardTPSrc, m.TPSrc == other.TPSrc, other.Wildcards&WildcardTPSrc != 0},
		{WildcardTPDst, m.TPDst == other.TPDst, other.Wildcards&WildcardTPDst != 0},
	}
	for _, f := range fields {
		if m.Wildcards&f.wild != 0 {
			continue // m wildcards this field: matches anything.
		}
		// m requires a value; other must require the same value.
		if f.otherWild || !f.equal {
			return false
		}
	}
	// Address prefixes: m's significant prefix must be no longer than
	// other's and agree on the common bits.
	mBits, oBits := m.NWSrcMaskBits(), other.NWSrcMaskBits()
	if mBits > oBits || m.NWSrc.MaskBits(mBits) != other.NWSrc.MaskBits(mBits) {
		return false
	}
	mBits, oBits = m.NWDstMaskBits(), other.NWDstMaskBits()
	if mBits > oBits || m.NWDst.MaskBits(mBits) != other.NWDst.MaskBits(mBits) {
		return false
	}
	return true
}

// Overlaps reports whether some packet could match both m and other. Two
// matches are disjoint only if some field is specified by both with
// incompatible values. Used for CHECK_OVERLAP flow-mod semantics.
func (m Match) Overlaps(other Match) bool {
	type pair struct {
		wild  uint32
		equal bool
	}
	pairs := []pair{
		{WildcardInPort, m.InPort == other.InPort},
		{WildcardDLSrc, m.DLSrc == other.DLSrc},
		{WildcardDLDst, m.DLDst == other.DLDst},
		{WildcardDLVLAN, m.DLVLAN == other.DLVLAN},
		{WildcardDLVLANPCP, m.DLVLANPCP == other.DLVLANPCP},
		{WildcardDLType, m.DLType == other.DLType},
		{WildcardNWTOS, m.NWTOS == other.NWTOS},
		{WildcardNWProto, m.NWProto == other.NWProto},
		{WildcardTPSrc, m.TPSrc == other.TPSrc},
		{WildcardTPDst, m.TPDst == other.TPDst},
	}
	for _, p := range pairs {
		if m.Wildcards&p.wild == 0 && other.Wildcards&p.wild == 0 && !p.equal {
			return false
		}
	}
	if common := min(m.NWSrcMaskBits(), other.NWSrcMaskBits()); common > 0 {
		if m.NWSrc.MaskBits(common) != other.NWSrc.MaskBits(common) {
			return false
		}
	}
	if common := min(m.NWDstMaskBits(), other.NWDstMaskBits()); common > 0 {
		if m.NWDst.MaskBits(common) != other.NWDst.MaskBits(common) {
			return false
		}
	}
	return true
}

// EqualStrict reports whether m and other describe exactly the same match:
// identical wildcard structure and identical values in every significant
// field (values under wildcarded fields are ignored). Used for the STRICT
// flow-mod commands.
func (m Match) EqualStrict(other Match) bool {
	// Compare effective wildcard structure (prefix lengths normalized).
	if m.Wildcards&^(uint32(0x3f)<<nwSrcShift|uint32(0x3f)<<nwDstShift) !=
		other.Wildcards&^(uint32(0x3f)<<nwSrcShift|uint32(0x3f)<<nwDstShift) {
		return false
	}
	if m.NWSrcMaskBits() != other.NWSrcMaskBits() || m.NWDstMaskBits() != other.NWDstMaskBits() {
		return false
	}
	return m.Subsumes(other) && other.Subsumes(m)
}

// marshal appends the 40-byte wire encoding of the match.
func (m Match) marshal(w *writer) {
	w.u32(m.Wildcards)
	w.u16(m.InPort)
	w.bytes(m.DLSrc[:])
	w.bytes(m.DLDst[:])
	w.u16(m.DLVLAN)
	w.u8(m.DLVLANPCP)
	w.pad(1)
	w.u16(m.DLType)
	w.u8(m.NWTOS)
	w.u8(m.NWProto)
	w.pad(2)
	w.bytes(m.NWSrc[:])
	w.bytes(m.NWDst[:])
	w.u16(m.TPSrc)
	w.u16(m.TPDst)
}

// unmarshal parses the 40-byte wire encoding of the match. It defers to
// decodeMatch (shared with the zero-copy Frame view) so the typed path
// pays no per-field allocations either.
func (m *Match) unmarshal(r *reader) {
	if r.err != nil || r.remaining() < matchLen && r.fail() {
		return
	}
	*m = decodeMatch(r.b[r.off:])
	r.off += matchLen
}

// String renders the non-wildcarded fields, e.g.
// "in_port=1,dl_src=..,nw_dst=10.0.0.3/32".
func (m Match) String() string {
	if m.Wildcards == WildcardAll {
		return "any"
	}
	var parts []string
	add := func(wild uint32, name, val string) {
		if m.Wildcards&wild == 0 {
			parts = append(parts, name+"="+val)
		}
	}
	add(WildcardInPort, "in_port", fmt.Sprintf("%d", m.InPort))
	add(WildcardDLSrc, "dl_src", m.DLSrc.String())
	add(WildcardDLDst, "dl_dst", m.DLDst.String())
	add(WildcardDLVLAN, "dl_vlan", fmt.Sprintf("%d", m.DLVLAN))
	add(WildcardDLVLANPCP, "dl_vlan_pcp", fmt.Sprintf("%d", m.DLVLANPCP))
	add(WildcardDLType, "dl_type", fmt.Sprintf("0x%04x", m.DLType))
	add(WildcardNWTOS, "nw_tos", fmt.Sprintf("%d", m.NWTOS))
	add(WildcardNWProto, "nw_proto", fmt.Sprintf("%d", m.NWProto))
	if bits := m.NWSrcMaskBits(); bits > 0 {
		parts = append(parts, fmt.Sprintf("nw_src=%s/%d", m.NWSrc, bits))
	}
	if bits := m.NWDstMaskBits(); bits > 0 {
		parts = append(parts, fmt.Sprintf("nw_dst=%s/%d", m.NWDst, bits))
	}
	add(WildcardTPSrc, "tp_src", fmt.Sprintf("%d", m.TPSrc))
	add(WildcardTPDst, "tp_dst", fmt.Sprintf("%d", m.TPDst))
	if len(parts) == 0 {
		return "any"
	}
	return strings.Join(parts, ",")
}
