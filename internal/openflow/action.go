package openflow

import (
	"fmt"

	"attain/internal/netaddr"
)

// ActionType identifies an OpenFlow 1.0 action (ofp_action_type).
type ActionType uint16

// OpenFlow 1.0 action types.
const (
	ActionTypeOutput     ActionType = 0
	ActionTypeSetVLANVID ActionType = 1
	ActionTypeSetVLANPCP ActionType = 2
	ActionTypeStripVLAN  ActionType = 3
	ActionTypeSetDLSrc   ActionType = 4
	ActionTypeSetDLDst   ActionType = 5
	ActionTypeSetNWSrc   ActionType = 6
	ActionTypeSetNWDst   ActionType = 7
	ActionTypeSetNWTOS   ActionType = 8
	ActionTypeSetTPSrc   ActionType = 9
	ActionTypeSetTPDst   ActionType = 10
	ActionTypeEnqueue    ActionType = 11
	ActionTypeVendor     ActionType = 0xffff
)

// Action is one entry of an OpenFlow action list.
type Action interface {
	// ActionType returns the ofp_action_type of the action.
	ActionType() ActionType
	// marshal appends the full wire encoding including the 4-byte action
	// header.
	marshal(w *writer)
}

// ActionOutput forwards the packet out of Port, sending at most MaxLen bytes
// to the controller when Port is PortController.
type ActionOutput struct {
	Port   uint16
	MaxLen uint16
}

// ActionSetVLANVID sets the 802.1Q VLAN id.
type ActionSetVLANVID struct{ VID uint16 }

// ActionSetVLANPCP sets the 802.1Q priority.
type ActionSetVLANPCP struct{ PCP uint8 }

// ActionStripVLAN removes any 802.1Q header.
type ActionStripVLAN struct{}

// ActionSetDLSrc rewrites the Ethernet source address.
type ActionSetDLSrc struct{ Addr netaddr.MAC }

// ActionSetDLDst rewrites the Ethernet destination address.
type ActionSetDLDst struct{ Addr netaddr.MAC }

// ActionSetNWSrc rewrites the IPv4 source address.
type ActionSetNWSrc struct{ Addr netaddr.IPv4 }

// ActionSetNWDst rewrites the IPv4 destination address.
type ActionSetNWDst struct{ Addr netaddr.IPv4 }

// ActionSetNWTOS rewrites the IP ToS/DSCP bits.
type ActionSetNWTOS struct{ TOS uint8 }

// ActionSetTPSrc rewrites the transport-layer source port.
type ActionSetTPSrc struct{ Port uint16 }

// ActionSetTPDst rewrites the transport-layer destination port.
type ActionSetTPDst struct{ Port uint16 }

// ActionEnqueue forwards the packet through a queue attached to a port.
type ActionEnqueue struct {
	Port    uint16
	QueueID uint32
}

// ActionVendor is an opaque vendor action; Body excludes the 8-byte
// header+vendor prefix.
type ActionVendor struct {
	Vendor uint32
	Body   []byte
}

// Compile-time interface checks.
var (
	_ Action = ActionOutput{}
	_ Action = ActionSetVLANVID{}
	_ Action = ActionSetVLANPCP{}
	_ Action = ActionStripVLAN{}
	_ Action = ActionSetDLSrc{}
	_ Action = ActionSetDLDst{}
	_ Action = ActionSetNWSrc{}
	_ Action = ActionSetNWDst{}
	_ Action = ActionSetNWTOS{}
	_ Action = ActionSetTPSrc{}
	_ Action = ActionSetTPDst{}
	_ Action = ActionEnqueue{}
	_ Action = ActionVendor{}
)

// ActionType implementations.
func (ActionOutput) ActionType() ActionType     { return ActionTypeOutput }
func (ActionSetVLANVID) ActionType() ActionType { return ActionTypeSetVLANVID }
func (ActionSetVLANPCP) ActionType() ActionType { return ActionTypeSetVLANPCP }
func (ActionStripVLAN) ActionType() ActionType  { return ActionTypeStripVLAN }
func (ActionSetDLSrc) ActionType() ActionType   { return ActionTypeSetDLSrc }
func (ActionSetDLDst) ActionType() ActionType   { return ActionTypeSetDLDst }
func (ActionSetNWSrc) ActionType() ActionType   { return ActionTypeSetNWSrc }
func (ActionSetNWDst) ActionType() ActionType   { return ActionTypeSetNWDst }
func (ActionSetNWTOS) ActionType() ActionType   { return ActionTypeSetNWTOS }
func (ActionSetTPSrc) ActionType() ActionType   { return ActionTypeSetTPSrc }
func (ActionSetTPDst) ActionType() ActionType   { return ActionTypeSetTPDst }
func (ActionEnqueue) ActionType() ActionType    { return ActionTypeEnqueue }
func (ActionVendor) ActionType() ActionType     { return ActionTypeVendor }

func actionHeader(w *writer, t ActionType, length int) {
	w.u16(uint16(t))
	w.u16(uint16(length))
}

func (a ActionOutput) marshal(w *writer) {
	actionHeader(w, ActionTypeOutput, 8)
	w.u16(a.Port)
	w.u16(a.MaxLen)
}

func (a ActionSetVLANVID) marshal(w *writer) {
	actionHeader(w, ActionTypeSetVLANVID, 8)
	w.u16(a.VID)
	w.pad(2)
}

func (a ActionSetVLANPCP) marshal(w *writer) {
	actionHeader(w, ActionTypeSetVLANPCP, 8)
	w.u8(a.PCP)
	w.pad(3)
}

func (a ActionStripVLAN) marshal(w *writer) {
	actionHeader(w, ActionTypeStripVLAN, 8)
	w.pad(4)
}

func (a ActionSetDLSrc) marshal(w *writer) {
	actionHeader(w, ActionTypeSetDLSrc, 16)
	w.bytes(a.Addr[:])
	w.pad(6)
}

func (a ActionSetDLDst) marshal(w *writer) {
	actionHeader(w, ActionTypeSetDLDst, 16)
	w.bytes(a.Addr[:])
	w.pad(6)
}

func (a ActionSetNWSrc) marshal(w *writer) {
	actionHeader(w, ActionTypeSetNWSrc, 8)
	w.bytes(a.Addr[:])
}

func (a ActionSetNWDst) marshal(w *writer) {
	actionHeader(w, ActionTypeSetNWDst, 8)
	w.bytes(a.Addr[:])
}

func (a ActionSetNWTOS) marshal(w *writer) {
	actionHeader(w, ActionTypeSetNWTOS, 8)
	w.u8(a.TOS)
	w.pad(3)
}

func (a ActionSetTPSrc) marshal(w *writer) {
	actionHeader(w, ActionTypeSetTPSrc, 8)
	w.u16(a.Port)
	w.pad(2)
}

func (a ActionSetTPDst) marshal(w *writer) {
	actionHeader(w, ActionTypeSetTPDst, 8)
	w.u16(a.Port)
	w.pad(2)
}

func (a ActionEnqueue) marshal(w *writer) {
	actionHeader(w, ActionTypeEnqueue, 16)
	w.u16(a.Port)
	w.pad(6)
	w.u32(a.QueueID)
}

func (a ActionVendor) marshal(w *writer) {
	length := 8 + len(a.Body)
	if rem := length % 8; rem != 0 {
		length += 8 - rem
	}
	actionHeader(w, ActionTypeVendor, length)
	w.u32(a.Vendor)
	w.bytes(a.Body)
	w.pad(length - 8 - len(a.Body))
}

// marshalActions appends the wire encoding of an action list and returns the
// number of bytes written.
func marshalActions(w *writer, actions []Action) int {
	start := len(w.b)
	for _, a := range actions {
		a.marshal(w)
	}
	return len(w.b) - start
}

// unmarshalActions parses an action list occupying exactly data.
func unmarshalActions(data []byte) ([]Action, error) {
	var actions []Action
	for len(data) > 0 {
		if len(data) < 4 {
			return nil, ErrTruncated
		}
		t := ActionType(uint16(data[0])<<8 | uint16(data[1]))
		length := int(uint16(data[2])<<8 | uint16(data[3]))
		if length < 8 || length%8 != 0 || length > len(data) {
			return nil, fmt.Errorf("action %d length %d: %w", t, length, ErrBadLength)
		}
		body := &reader{b: data[4:length]}
		var a Action
		switch t {
		case ActionTypeOutput:
			a = ActionOutput{Port: body.u16(), MaxLen: body.u16()}
		case ActionTypeSetVLANVID:
			a = ActionSetVLANVID{VID: body.u16()}
		case ActionTypeSetVLANPCP:
			a = ActionSetVLANPCP{PCP: body.u8()}
		case ActionTypeStripVLAN:
			a = ActionStripVLAN{}
		case ActionTypeSetDLSrc:
			var m netaddr.MAC
			copy(m[:], body.bytes(6))
			a = ActionSetDLSrc{Addr: m}
		case ActionTypeSetDLDst:
			var m netaddr.MAC
			copy(m[:], body.bytes(6))
			a = ActionSetDLDst{Addr: m}
		case ActionTypeSetNWSrc:
			var ip netaddr.IPv4
			copy(ip[:], body.bytes(4))
			a = ActionSetNWSrc{Addr: ip}
		case ActionTypeSetNWDst:
			var ip netaddr.IPv4
			copy(ip[:], body.bytes(4))
			a = ActionSetNWDst{Addr: ip}
		case ActionTypeSetNWTOS:
			a = ActionSetNWTOS{TOS: body.u8()}
		case ActionTypeSetTPSrc:
			a = ActionSetTPSrc{Port: body.u16()}
		case ActionTypeSetTPDst:
			a = ActionSetTPDst{Port: body.u16()}
		case ActionTypeEnqueue:
			av := ActionEnqueue{Port: body.u16()}
			body.skip(6)
			av.QueueID = body.u32()
			a = av
		case ActionTypeVendor:
			a = ActionVendor{Vendor: body.u32(), Body: body.rest()}
		default:
			return nil, fmt.Errorf("action type %d: %w", uint16(t), ErrUnknownType)
		}
		if body.err != nil {
			return nil, body.err
		}
		actions = append(actions, a)
		data = data[length:]
	}
	return actions, nil
}
