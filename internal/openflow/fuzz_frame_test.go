package openflow

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzFrameViewDifferential pins the zero-copy Frame view against the full
// codec: for arbitrary input, every Frame accessor must agree with what
// openflow.Unmarshal decodes (same values), and whenever Unmarshal accepts
// a frame NewFrame must too. NewFrame is deliberately laxer than Unmarshal
// — it validates only header framing, leaving bodies lazy — so accessors
// additionally must never panic on frames whose bodies Unmarshal rejects.
func FuzzFrameViewDifferential(f *testing.F) {
	addFuzzSeeds(f)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, ferr := NewFrame(data)
		hdr, msg, uerr := Unmarshal(data)

		if uerr == nil && ferr != nil {
			t.Fatalf("Unmarshal accepted a %s frame NewFrame rejected: %v", hdr.Type, ferr)
		}
		if ferr != nil {
			return
		}

		// Header fields come straight from the wire in both views.
		if fr.Version() != hdr.Version || fr.Type() != hdr.Type ||
			fr.Len() != int(hdr.Length) || fr.Xid() != hdr.Xid {
			t.Fatalf("header mismatch: frame (%d %s len=%d xid=%d) vs header %+v",
				fr.Version(), fr.Type(), fr.Len(), fr.Xid(), hdr)
		}
		if !bytes.Equal(fr.Bytes(), data[:hdr.Length]) {
			t.Fatal("Bytes() does not view the framed bytes")
		}

		// Exercise every accessor: on body-invalid frames they must simply
		// not panic; on fully valid frames they must agree with the struct.
		fmCmd, fmCmdOK := fr.FlowModCommand()
		fmIdle, _ := fr.FlowModIdleTimeout()
		fmHard, _ := fr.FlowModHardTimeout()
		fmPrio, _ := fr.FlowModPriority()
		fmBuf, _ := fr.FlowModBufferID()
		fmOut, _ := fr.FlowModOutPort()
		fmCookie, _ := fr.FlowModCookie()
		match, matchOK := fr.Match()
		piBuf, piOK := fr.PacketInBufferID()
		piTotal, _ := fr.PacketInTotalLen()
		piPort, _ := fr.PacketInInPort()
		piReason, _ := fr.PacketInReason()
		piData, _ := fr.PacketInData()
		poBuf, poOK := fr.PacketOutBufferID()
		poPort, _ := fr.PacketOutInPort()
		echo, echoOK := fr.EchoData()

		if uerr != nil {
			return
		}

		fh, fm, merr := fr.Materialize()
		if merr != nil || fh != hdr {
			t.Fatalf("Materialize diverged from Unmarshal: %v %+v vs %+v", merr, fh, hdr)
		}
		if fm.Type() != msg.Type() {
			t.Fatalf("Materialize type %s vs %s", fm.Type(), msg.Type())
		}

		switch m := msg.(type) {
		case *FlowMod:
			if !fmCmdOK || !matchOK {
				t.Fatal("FLOW_MOD accessors failed on a frame Unmarshal accepted")
			}
			if fmCmd != m.Command || fmIdle != m.IdleTimeout || fmHard != m.HardTimeout ||
				fmPrio != m.Priority || fmBuf != m.BufferID || fmOut != m.OutPort ||
				fmCookie != m.Cookie {
				t.Fatalf("FLOW_MOD field mismatch: frame vs %+v", m)
			}
			if match != m.Match {
				t.Fatalf("FLOW_MOD match mismatch: %+v vs %+v", match, m.Match)
			}
		case *FlowRemoved:
			if !matchOK {
				t.Fatal("FLOW_REMOVED Match() failed on a frame Unmarshal accepted")
			}
			if match != m.Match {
				t.Fatalf("FLOW_REMOVED match mismatch: %+v vs %+v", match, m.Match)
			}
		case *PacketIn:
			if !piOK {
				t.Fatal("PACKET_IN accessors failed on a frame Unmarshal accepted")
			}
			if piBuf != m.BufferID || piTotal != m.TotalLen || piPort != m.InPort || piReason != m.Reason {
				t.Fatalf("PACKET_IN field mismatch: frame vs %+v", m)
			}
			if !bytes.Equal(piData, m.Data) {
				t.Fatalf("PACKET_IN data mismatch: %x vs %x", piData, m.Data)
			}
		case *PacketOut:
			if !poOK {
				t.Fatal("PACKET_OUT accessors failed on a frame Unmarshal accepted")
			}
			if poBuf != m.BufferID || poPort != m.InPort {
				t.Fatalf("PACKET_OUT field mismatch: frame vs %+v", m)
			}
		case *EchoRequest:
			if !echoOK || !bytes.Equal(echo, m.Data) {
				t.Fatalf("ECHO_REQUEST data mismatch: %x vs %x", echo, m.Data)
			}
		case *EchoReply:
			if !echoOK || !bytes.Equal(echo, m.Data) {
				t.Fatalf("ECHO_REPLY data mismatch: %x vs %x", echo, m.Data)
			}
		}

		// The mutation path (Materialize + AppendMessage with the original
		// xid) must stay byte-compatible with the old Marshal codec.
		old, err := Marshal(hdr.Xid, msg)
		if err != nil {
			return
		}
		appended, err := AppendMessage(GetBuffer(), hdr.Xid, fm)
		if err != nil {
			t.Fatalf("AppendMessage failed where Marshal succeeded: %v", err)
		}
		if !bytes.Equal(appended, old) {
			t.Fatalf("AppendMessage not byte-compatible with Marshal:\n%x\n%x", appended, old)
		}
		PutBuffer(appended)
	})
}

// TestNewFrameRejectsBadFraming pins the header validation split between
// NewFrame and Unmarshal.
func TestNewFrameRejectsBadFraming(t *testing.T) {
	raw, err := Marshal(9, &EchoRequest{Data: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFrame(raw); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func([]byte)
		want   error
	}{
		{"short", func(b []byte) {}, ErrTruncated},
		{"bad version", func(b []byte) { b[0] = 0x04 }, ErrBadVersion},
		{"unknown type", func(b []byte) { b[1] = 99 }, ErrUnknownType},
		{"length below header", func(b []byte) { b[2], b[3] = 0, 4 }, ErrBadLength},
		{"length beyond data", func(b []byte) { b[2], b[3] = 0xff, 0xff }, ErrTruncated},
	}
	for _, tc := range cases {
		b := append([]byte(nil), raw...)
		if tc.name == "short" {
			b = b[:4]
		}
		tc.mutate(b)
		if _, err := NewFrame(b); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}
