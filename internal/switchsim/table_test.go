package switchsim

import (
	"errors"
	"testing"
	"time"

	"attain/internal/netaddr"
	"attain/internal/openflow"
)

var (
	macA = netaddr.MustParseMAC("0a:00:00:00:00:01")
	macB = netaddr.MustParseMAC("0a:00:00:00:00:02")
	ipA  = netaddr.MustParseIPv4("10.0.0.1")
	ipB  = netaddr.MustParseIPv4("10.0.0.2")
)

func tcpFields() openflow.FieldView {
	return openflow.FieldView{
		InPort: 1, DLSrc: macA, DLDst: macB, DLType: 0x0800,
		NWProto: 6, NWSrc: ipA, NWDst: ipB, TPSrc: 1000, TPDst: 80,
	}
}

func addFM(match openflow.Match, priority uint16, outPort uint16) *openflow.FlowMod {
	return &openflow.FlowMod{
		Match: match, Command: openflow.FlowModAdd, Priority: priority,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
		Actions: []openflow.Action{openflow.ActionOutput{Port: outPort}},
	}
}

func TestTableAddAndLookup(t *testing.T) {
	tbl := NewTable(0)
	now := time.Unix(100, 0)
	f := tcpFields()
	if err := tbl.Add(addFM(openflow.ExactFrom(f), 1, 2), now); err != nil {
		t.Fatal(err)
	}
	e := tbl.Lookup(f, 64, now.Add(time.Second))
	if e == nil {
		t.Fatal("lookup missed installed flow")
	}
	if e.Packets != 1 || e.Bytes != 64 {
		t.Errorf("counters = %d/%d", e.Packets, e.Bytes)
	}
	if !e.LastMatched.Equal(now.Add(time.Second)) {
		t.Errorf("LastMatched = %v", e.LastMatched)
	}
	// A non-matching packet misses.
	g := f
	g.TPDst = 443
	if tbl.Lookup(g, 64, now) != nil {
		t.Error("lookup matched wrong packet")
	}
	lookups, matched := tbl.LookupStats()
	if lookups != 2 || matched != 1 {
		t.Errorf("stats = %d lookups, %d matched", lookups, matched)
	}
}

func TestTablePriorityOrder(t *testing.T) {
	tbl := NewTable(0)
	now := time.Unix(0, 0)
	f := tcpFields()

	// Low-priority catch-all to port 9, high-priority exact to port 2.
	if err := tbl.Add(addFM(openflow.MatchAll(), 1, 9), now); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Add(addFM(openflow.ExactFrom(f), 100, 2), now); err != nil {
		t.Fatal(err)
	}
	e := tbl.Lookup(f, 1, now)
	if e == nil || e.Priority != 100 {
		t.Fatalf("lookup chose priority %v, want 100", e)
	}
	// Non-matching traffic falls to the catch-all.
	g := f
	g.NWDst = netaddr.MustParseIPv4("10.0.0.99")
	e = tbl.Lookup(g, 1, now)
	if e == nil || e.Priority != 1 {
		t.Fatalf("lookup chose %v, want catch-all", e)
	}
}

func TestTableAddReplacesIdentical(t *testing.T) {
	tbl := NewTable(0)
	now := time.Unix(0, 0)
	f := tcpFields()
	m := openflow.ExactFrom(f)
	if err := tbl.Add(addFM(m, 5, 2), now); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Add(addFM(m, 5, 7), now); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("table has %d entries, want 1 after replace", tbl.Len())
	}
	e := tbl.Lookup(f, 1, now)
	if out := e.Actions[0].(openflow.ActionOutput); out.Port != 7 {
		t.Errorf("replaced entry outputs to %d, want 7", out.Port)
	}
}

func TestTableCheckOverlap(t *testing.T) {
	tbl := NewTable(0)
	now := time.Unix(0, 0)
	f := tcpFields()

	if err := tbl.Add(addFM(openflow.MatchAll(), 5, 1), now); err != nil {
		t.Fatal(err)
	}
	fm := addFM(openflow.ExactFrom(f), 5, 2)
	fm.Flags = openflow.FlowModFlagCheckOverlap
	if err := tbl.Add(fm, now); !errors.Is(err, ErrOverlap) {
		t.Errorf("Add overlapping = %v, want ErrOverlap", err)
	}
	// Different priority does not overlap.
	fm.Priority = 6
	if err := tbl.Add(fm, now); err != nil {
		t.Errorf("Add at different priority = %v", err)
	}
}

func TestTableModify(t *testing.T) {
	tbl := NewTable(0)
	now := time.Unix(0, 0)
	f := tcpFields()
	if err := tbl.Add(addFM(openflow.ExactFrom(f), 1, 2), now); err != nil {
		t.Fatal(err)
	}
	// Non-strict modify via a subsuming wildcard match.
	mod := addFM(openflow.MatchAll(), 1, 4)
	mod.Command = openflow.FlowModModify
	if err := tbl.Modify(mod, false, now); err != nil {
		t.Fatal(err)
	}
	e := tbl.Lookup(f, 1, now)
	if out := e.Actions[0].(openflow.ActionOutput); out.Port != 4 {
		t.Errorf("modified entry outputs to %d, want 4", out.Port)
	}
	if tbl.Len() != 1 {
		t.Errorf("modify created entries: len=%d", tbl.Len())
	}
}

func TestTableModifyAddsWhenMissing(t *testing.T) {
	tbl := NewTable(0)
	now := time.Unix(0, 0)
	mod := addFM(openflow.ExactFrom(tcpFields()), 1, 4)
	if err := tbl.Modify(mod, true, now); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Errorf("modify-as-add: len=%d, want 1", tbl.Len())
	}
}

func TestTableDeleteNonStrict(t *testing.T) {
	tbl := NewTable(0)
	now := time.Unix(0, 0)
	f := tcpFields()
	g := f
	g.NWSrc = netaddr.MustParseIPv4("10.0.0.9")
	if err := tbl.Add(addFM(openflow.ExactFrom(f), 1, 2), now); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Add(addFM(openflow.ExactFrom(g), 1, 3), now); err != nil {
		t.Fatal(err)
	}
	del := addFM(openflow.MatchAll(), 0, 0)
	del.Command = openflow.FlowModDelete
	removed := tbl.Delete(del, false)
	if len(removed) != 2 || tbl.Len() != 0 {
		t.Errorf("removed %d entries, table len %d", len(removed), tbl.Len())
	}
}

func TestTableDeleteStrictRequiresExact(t *testing.T) {
	tbl := NewTable(0)
	now := time.Unix(0, 0)
	f := tcpFields()
	if err := tbl.Add(addFM(openflow.ExactFrom(f), 7, 2), now); err != nil {
		t.Fatal(err)
	}
	del := addFM(openflow.MatchAll(), 7, 0)
	del.Command = openflow.FlowModDeleteStrict
	if removed := tbl.Delete(del, true); len(removed) != 0 {
		t.Error("strict delete with wildcard match removed exact entry")
	}
	del2 := addFM(openflow.ExactFrom(f), 7, 0)
	del2.Command = openflow.FlowModDeleteStrict
	if removed := tbl.Delete(del2, true); len(removed) != 1 {
		t.Error("strict delete with exact match did not remove entry")
	}
}

func TestTableDeleteOutPortFilter(t *testing.T) {
	tbl := NewTable(0)
	now := time.Unix(0, 0)
	f := tcpFields()
	g := f
	g.TPDst = 443
	if err := tbl.Add(addFM(openflow.ExactFrom(f), 1, 2), now); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Add(addFM(openflow.ExactFrom(g), 1, 3), now); err != nil {
		t.Fatal(err)
	}
	del := addFM(openflow.MatchAll(), 0, 0)
	del.Command = openflow.FlowModDelete
	del.OutPort = 3
	removed := tbl.Delete(del, false)
	if len(removed) != 1 || tbl.Len() != 1 {
		t.Fatalf("out_port filter removed %d, kept %d", len(removed), tbl.Len())
	}
	if out := removed[0].Actions[0].(openflow.ActionOutput); out.Port != 3 {
		t.Errorf("removed wrong entry (port %d)", out.Port)
	}
}

func TestTableExpiry(t *testing.T) {
	tbl := NewTable(0)
	t0 := time.Unix(0, 0)

	idle := addFM(openflow.ExactFrom(tcpFields()), 1, 2)
	idle.IdleTimeout = 5
	if err := tbl.Add(idle, t0); err != nil {
		t.Fatal(err)
	}
	g := tcpFields()
	g.TPDst = 443
	hard := addFM(openflow.ExactFrom(g), 1, 3)
	hard.HardTimeout = 8
	if err := tbl.Add(hard, t0); err != nil {
		t.Fatal(err)
	}

	// At t=4 nothing expires.
	if exp := tbl.Expire(t0.Add(4 * time.Second)); len(exp) != 0 {
		t.Fatalf("expired early: %v", exp)
	}
	// Touch the idle flow at t=4; it now lives until t=9.
	tbl.Lookup(tcpFields(), 1, t0.Add(4*time.Second))
	// At t=8.5 only the hard-timeout flow expires.
	exp := tbl.Expire(t0.Add(8500 * time.Millisecond))
	if len(exp) != 1 || exp[0].Reason != openflow.FlowRemovedHardTimeout {
		t.Fatalf("expire at 8.5s = %+v, want 1 hard timeout", exp)
	}
	// At t=10 the idle flow expires.
	exp = tbl.Expire(t0.Add(10 * time.Second))
	if len(exp) != 1 || exp[0].Reason != openflow.FlowRemovedIdleTimeout {
		t.Fatalf("expire at 10s = %+v, want 1 idle timeout", exp)
	}
	if tbl.Len() != 0 {
		t.Errorf("table len = %d", tbl.Len())
	}
}

func TestTableFull(t *testing.T) {
	tbl := NewTable(2)
	now := time.Unix(0, 0)
	f := tcpFields()
	for i := 0; i < 2; i++ {
		g := f
		g.TPDst = uint16(i)
		if err := tbl.Add(addFM(openflow.ExactFrom(g), 1, 2), now); err != nil {
			t.Fatal(err)
		}
	}
	g := f
	g.TPDst = 99
	if err := tbl.Add(addFM(openflow.ExactFrom(g), 1, 2), now); !errors.Is(err, ErrTableFull) {
		t.Errorf("Add to full table = %v, want ErrTableFull", err)
	}
}

func TestTableAggregate(t *testing.T) {
	tbl := NewTable(0)
	now := time.Unix(0, 0)
	f := tcpFields()
	if err := tbl.Add(addFM(openflow.ExactFrom(f), 1, 2), now); err != nil {
		t.Fatal(err)
	}
	tbl.Lookup(f, 100, now)
	tbl.Lookup(f, 100, now)
	packets, bytes, flows := tbl.Aggregate(openflow.MatchAll())
	if packets != 2 || bytes != 200 || flows != 1 {
		t.Errorf("aggregate = %d/%d/%d", packets, bytes, flows)
	}
}

func TestBufferStore(t *testing.T) {
	b := newBufferStore(2)
	id1 := b.put(1, []byte("one"))
	id2 := b.put(2, []byte("two"))
	if id1 == id2 {
		t.Fatal("duplicate buffer ids")
	}
	// Third put evicts the oldest.
	id3 := b.put(3, []byte("three"))
	if _, ok := b.take(id1); ok {
		t.Error("evicted buffer still retrievable")
	}
	pkt, ok := b.take(id2)
	if !ok || string(pkt.frame) != "two" || pkt.inPort != 2 {
		t.Errorf("take(id2) = %+v, %v", pkt, ok)
	}
	// Double take fails.
	if _, ok := b.take(id2); ok {
		t.Error("double take succeeded")
	}
	if _, ok := b.take(id3); !ok {
		t.Error("id3 not retrievable")
	}
	if b.len() != 0 {
		t.Errorf("len = %d", b.len())
	}
}

func TestRewriteFrameDL(t *testing.T) {
	frame := make([]byte, 14)
	copy(frame[0:6], macA[:])
	copy(frame[6:12], macB[:])
	newMAC := netaddr.MustParseMAC("0a:00:00:00:00:0f")
	if !rewriteFrame(frame, openflow.ActionSetDLDst{Addr: newMAC}) {
		t.Fatal("SetDLDst failed")
	}
	var got netaddr.MAC
	copy(got[:], frame[0:6])
	if got != newMAC {
		t.Errorf("dl_dst = %s", got)
	}
}
