package switchsim

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"attain/internal/clock"
	"attain/internal/controller"
	"attain/internal/dataplane"
	"attain/internal/netaddr"
	"attain/internal/netem"
)

// hostRig is a shard-hosted fleet of switches against one real controller
// over the in-memory transport.
type hostRig struct {
	clk  clock.Clock
	tr   *netem.MemTransport
	ctrl *controller.Controller
	app  *controller.LearningSwitch
	host *Host
	sws  []*Switch
}

func newHostRig(t *testing.T, n, shards int) *hostRig {
	t.Helper()
	clk := clock.New()
	tr := netem.NewBufferedMemTransport(0)
	app := controller.NewLearningSwitch(controller.ProfileFloodlight)
	ctrl := controller.New(controller.Config{
		Name: "c1", ListenAddr: "c1", Transport: tr, App: app,
	}, clk)
	if err := ctrl.Start(); err != nil {
		t.Fatal(err)
	}
	host := NewHost(HostConfig{
		Shards: shards,
		Tick:   10 * time.Millisecond,
		Clock:  clk,
	})
	host.Start()
	r := &hostRig{clk: clk, tr: tr, ctrl: ctrl, app: app, host: host}
	t.Cleanup(func() {
		host.Stop()
		ctrl.Stop()
	})
	for i := 0; i < n; i++ {
		sw := New(Config{
			Name: fmt.Sprintf("s%d", i+1), DPID: uint64(i + 1),
			ControllerAddr: "c1", Transport: tr,
			EchoInterval:      30 * time.Millisecond,
			EchoTimeout:       200 * time.Millisecond,
			ReconnectInterval: 20 * time.Millisecond,
			ExpiryInterval:    20 * time.Millisecond,
		}, clk)
		if err := host.Admit(sw); err != nil {
			t.Fatalf("admit %s: %v", sw.Name(), err)
		}
		r.sws = append(r.sws, sw)
	}
	return r
}

func (r *hostRig) waitSwitches(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if r.ctrl.SwitchCount() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("controller sees %d switches, want %d", r.ctrl.SwitchCount(), want)
}

func TestHostAdmitsFleet(t *testing.T) {
	const n = 40
	r := newHostRig(t, n, 4)
	r.waitSwitches(t, n)
	for _, sw := range r.sws {
		if !sw.Connected() {
			t.Fatalf("%s not connected after admit", sw.Name())
		}
	}
	// Every hosted switch must answer a features round-trip through the
	// shard loop (send path: hostedConn → shard queue → coalesced write).
	for _, sc := range r.ctrl.Switches() {
		if len(sc.Ports()) != 0 {
			t.Fatalf("unexpected ports on host-admitted switch: %v", sc.Ports())
		}
	}
}

func TestHostedDataPath(t *testing.T) {
	r := newHostRig(t, 1, 1)
	r.waitSwitches(t, 1)
	sw := r.sws[0]

	h1 := dataplane.NewHost("h1", macA, ipA, r.clk)
	h2 := dataplane.NewHost("h2", macB, ipB, r.clk)
	h1.AttachOutput(sw.AttachPort(1, "s1-eth1", h1.Input))
	h2.AttachOutput(sw.AttachPort(2, "s1-eth2", h2.Input))

	// A ping through the hosted switch exercises PACKET_IN → controller →
	// FLOW_MOD/PACKET_OUT → datapath, all through the shard loop.
	if _, err := h1.Ping(h2.IP(), 2*time.Second); err != nil {
		t.Fatalf("ping through hosted switch: %v", err)
	}
	if sw.Stats().PacketInsSent == 0 {
		t.Fatal("hosted switch never sent PACKET_IN")
	}
	if sw.Table().Len() == 0 {
		t.Fatal("controller flow mods never landed in the hosted table")
	}
}

func TestHostedReconnect(t *testing.T) {
	r := newHostRig(t, 3, 2)
	r.waitSwitches(t, 3)

	// Kill every live control conn server-side; hosted switches must
	// redial through reconnectLater and re-handshake.
	for _, sc := range r.ctrl.Switches() {
		sc.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		all := r.ctrl.SwitchCount() == 3
		if all {
			for _, sw := range r.sws {
				if !sw.Connected() || sw.Stats().Reconnects == 0 {
					all = false
					break
				}
			}
		}
		if all {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, sw := range r.sws {
		t.Logf("%s connected=%v reconnects=%d", sw.Name(), sw.Connected(), sw.Stats().Reconnects)
	}
	t.Fatal("hosted switches did not reconnect after controller-side close")
}

func TestHostedEchoLiveness(t *testing.T) {
	r := newHostRig(t, 1, 1)
	r.waitSwitches(t, 1)
	// The shard tick must keep the session alive well past several echo
	// timeouts: probes go out, replies refresh lastRx.
	time.Sleep(500 * time.Millisecond)
	if !r.sws[0].Connected() {
		t.Fatal("hosted session died despite echo traffic")
	}
}

func TestHostAdmitAfterStop(t *testing.T) {
	clk := clock.New()
	tr := netem.NewBufferedMemTransport(0)
	app := controller.NewLearningSwitch(controller.ProfileFloodlight)
	ctrl := controller.New(controller.Config{
		Name: "c1", ListenAddr: "c1", Transport: tr, App: app,
	}, clk)
	if err := ctrl.Start(); err != nil {
		t.Fatal(err)
	}
	defer ctrl.Stop()
	host := NewHost(HostConfig{Clock: clk})
	host.Start()
	host.Stop()
	sw := New(Config{Name: "s1", DPID: 1, ControllerAddr: "c1", Transport: tr}, clk)
	if err := host.Admit(sw); err == nil {
		t.Fatal("admit after stop must fail")
	}
}

func TestHostConcurrentAdmitAndTraffic(t *testing.T) {
	// Race-stress the shard-hosted path: concurrent admissions across
	// shards, controller messages, data-plane inputs, and stat polls all
	// at once (run under -race in CI's whole-repo pass).
	const n = 24
	r := newHostRig(t, 0, 3)
	var wg sync.WaitGroup
	sws := make([]*Switch, n)
	for i := 0; i < n; i++ {
		sw := New(Config{
			Name: fmt.Sprintf("s%d", i+1), DPID: uint64(i + 1),
			ControllerAddr: "c1", Transport: r.tr,
			EchoInterval: 20 * time.Millisecond, ExpiryInterval: 10 * time.Millisecond,
		}, r.clk)
		sws[i] = sw
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := r.host.Admit(sw); err != nil {
				t.Errorf("admit %s: %v", sw.Name(), err)
			}
		}()
	}
	wg.Wait()
	r.sws = sws
	r.waitSwitches(t, n)

	stop := make(chan struct{})
	var pollers sync.WaitGroup
	pollers.Add(2)
	go func() {
		defer pollers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, sw := range sws {
					sw.Stats()
					sw.Connected()
				}
			}
		}
	}()
	go func() {
		defer pollers.Done()
		frame := buildEthFrame(macA, macB, 0x0800, []byte("payload"))
		for {
			select {
			case <-stop:
				return
			default:
				for _, sw := range sws {
					sw.input(1, frame)
					sw.SetLinkDown(1, false)
				}
			}
		}
	}()
	time.Sleep(200 * time.Millisecond)
	close(stop)
	pollers.Wait()
}

// buildEthFrame assembles a minimal Ethernet frame for input stress.
func buildEthFrame(dst, src netaddr.MAC, etherType uint16, payload []byte) []byte {
	frame := make([]byte, 0, 14+len(payload))
	frame = append(frame, dst[:]...)
	frame = append(frame, src[:]...)
	frame = append(frame, byte(etherType>>8), byte(etherType))
	return append(frame, payload...)
}
