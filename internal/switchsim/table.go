// Package switchsim implements a software OpenFlow 1.0 switch: a flow table
// with priority and wildcard matching, idle/hard timeout eviction, packet
// buffering for PACKET_IN, a controller channel with handshake and echo
// liveness, and the fail-safe / fail-secure behaviours the paper's
// connection-interruption experiment depends on. It plays the role of Open
// vSwitch in the ATTAIN paper.
package switchsim

import (
	"errors"
	"sync"
	"time"

	"attain/internal/openflow"
)

// ErrOverlap is returned by Add when CHECK_OVERLAP is requested and an
// overlapping entry of the same priority exists.
var ErrOverlap = errors.New("switchsim: overlapping flow entry")

// ErrTableFull is returned by Add when the table is at capacity.
var ErrTableFull = errors.New("switchsim: flow table full")

// Entry is one flow-table entry.
type Entry struct {
	Priority    uint16
	Match       openflow.Match
	Actions     []openflow.Action
	Cookie      uint64
	IdleTimeout uint16 // seconds; 0 = never
	HardTimeout uint16 // seconds; 0 = never
	Flags       uint16

	InstalledAt time.Time
	LastMatched time.Time
	Packets     uint64
	Bytes       uint64
}

// Expired is an entry evicted by a timeout sweep.
type Expired struct {
	Entry  *Entry
	Reason openflow.FlowRemovedReason
}

// Table is a single OpenFlow 1.0 flow table. All methods are safe for
// concurrent use.
type Table struct {
	mu      sync.Mutex
	entries []*Entry // sorted by descending priority, insertion order within
	maxSize int
	lookups uint64
	matched uint64
}

// NewTable creates a table bounded at maxSize entries (0 means a generous
// default).
func NewTable(maxSize int) *Table {
	if maxSize <= 0 {
		maxSize = 64 * 1024
	}
	return &Table{maxSize: maxSize}
}

// Len returns the number of installed entries.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// LookupStats returns the lookup and match counters.
func (t *Table) LookupStats() (lookups, matched uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lookups, t.matched
}

// Lookup finds the highest-priority entry matching f, updating its
// counters. It returns nil on a table miss.
func (t *Table) Lookup(f openflow.FieldView, frameLen int, now time.Time) *Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lookups++
	for _, e := range t.entries {
		if e.Match.Matches(f) {
			t.matched++
			e.Packets++
			e.Bytes += uint64(frameLen)
			e.LastMatched = now
			return e
		}
	}
	return nil
}

// insertIndex finds the position keeping entries sorted by descending
// priority with stable insertion order among equals.
func (t *Table) insertIndex(priority uint16) int {
	for i, e := range t.entries {
		if e.Priority < priority {
			return i
		}
	}
	return len(t.entries)
}

// Add installs a flow per FLOW_MOD ADD semantics: an entry with an
// identical (strict-equal) match and priority is replaced, preserving no
// counters; with CHECK_OVERLAP set, an overlapping same-priority entry
// causes ErrOverlap.
func (t *Table) Add(fm *openflow.FlowMod, now time.Time) error {
	t.mu.Lock()
	defer t.mu.Unlock()

	if fm.Flags&openflow.FlowModFlagCheckOverlap != 0 {
		for _, e := range t.entries {
			if e.Priority == fm.Priority && e.Match.Overlaps(fm.Match) {
				return ErrOverlap
			}
		}
	}
	// Replace identical entry if present.
	for i, e := range t.entries {
		if e.Priority == fm.Priority && e.Match.EqualStrict(fm.Match) {
			t.entries[i] = newEntry(fm, now)
			return nil
		}
	}
	if len(t.entries) >= t.maxSize {
		return ErrTableFull
	}
	idx := t.insertIndex(fm.Priority)
	t.entries = append(t.entries, nil)
	copy(t.entries[idx+1:], t.entries[idx:])
	t.entries[idx] = newEntry(fm, now)
	return nil
}

func newEntry(fm *openflow.FlowMod, now time.Time) *Entry {
	return &Entry{
		Priority:    fm.Priority,
		Match:       fm.Match,
		Actions:     append([]openflow.Action(nil), fm.Actions...),
		Cookie:      fm.Cookie,
		IdleTimeout: fm.IdleTimeout,
		HardTimeout: fm.HardTimeout,
		Flags:       fm.Flags,
		InstalledAt: now,
		LastMatched: now,
	}
}

// Modify updates the actions of matching entries per MODIFY/MODIFY_STRICT
// semantics; if no entry matches, the flow is added.
func (t *Table) Modify(fm *openflow.FlowMod, strict bool, now time.Time) error {
	t.mu.Lock()
	modified := false
	for _, e := range t.entries {
		if matchesForMod(e, fm, strict) {
			e.Actions = append([]openflow.Action(nil), fm.Actions...)
			e.Cookie = fm.Cookie
			modified = true
		}
	}
	t.mu.Unlock()
	if !modified {
		return t.Add(fm, now)
	}
	return nil
}

// Delete removes matching entries per DELETE/DELETE_STRICT semantics,
// honouring the out_port filter, and returns the removed entries.
func (t *Table) Delete(fm *openflow.FlowMod, strict bool) []*Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	var removed []*Entry
	kept := t.entries[:0]
	for _, e := range t.entries {
		if matchesForMod(e, fm, strict) && outPortMatches(e, fm.OutPort) {
			removed = append(removed, e)
		} else {
			kept = append(kept, e)
		}
	}
	// Zero the tail so removed entries are collectable.
	for i := len(kept); i < len(t.entries); i++ {
		t.entries[i] = nil
	}
	t.entries = kept
	return removed
}

func matchesForMod(e *Entry, fm *openflow.FlowMod, strict bool) bool {
	if strict {
		return e.Priority == fm.Priority && e.Match.EqualStrict(fm.Match)
	}
	return fm.Match.Subsumes(e.Match)
}

// outPortMatches applies the DELETE out_port filter: PortNone means no
// filter; otherwise the entry must have an output action to that port.
func outPortMatches(e *Entry, outPort uint16) bool {
	if outPort == openflow.PortNone {
		return true
	}
	for _, a := range e.Actions {
		if out, ok := a.(openflow.ActionOutput); ok && out.Port == outPort {
			return true
		}
	}
	return false
}

// Expire removes entries whose idle or hard timeout has elapsed and
// returns them with their removal reasons.
func (t *Table) Expire(now time.Time) []Expired {
	t.mu.Lock()
	defer t.mu.Unlock()
	var expired []Expired
	kept := t.entries[:0]
	for _, e := range t.entries {
		switch {
		case e.HardTimeout > 0 && !now.Before(e.InstalledAt.Add(time.Duration(e.HardTimeout)*time.Second)):
			expired = append(expired, Expired{Entry: e, Reason: openflow.FlowRemovedHardTimeout})
		case e.IdleTimeout > 0 && !now.Before(e.LastMatched.Add(time.Duration(e.IdleTimeout)*time.Second)):
			expired = append(expired, Expired{Entry: e, Reason: openflow.FlowRemovedIdleTimeout})
		default:
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(t.entries); i++ {
		t.entries[i] = nil
	}
	t.entries = kept
	return expired
}

// Clear removes all entries.
func (t *Table) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries = nil
}

// Snapshot returns copies of all entries in table order.
func (t *Table) Snapshot() []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Entry, len(t.entries))
	for i, e := range t.entries {
		out[i] = *e
		out[i].Actions = append([]openflow.Action(nil), e.Actions...)
	}
	return out
}

// Aggregate returns totals over entries subsumed by match.
func (t *Table) Aggregate(match openflow.Match) (packets, bytes uint64, flows uint32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.entries {
		if match.Subsumes(e.Match) {
			packets += e.Packets
			bytes += e.Bytes
			flows++
		}
	}
	return packets, bytes, flows
}
