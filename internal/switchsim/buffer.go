package switchsim

import (
	"sync"

	"attain/internal/openflow"
)

// bufferedPacket is a packet parked in the switch awaiting a controller
// decision.
type bufferedPacket struct {
	inPort uint16
	frame  []byte
}

// bufferStore holds packets referenced by PACKET_IN buffer ids, evicting
// the oldest entry when full.
type bufferStore struct {
	mu    sync.Mutex
	cap   int
	next  uint32
	m     map[uint32]bufferedPacket
	order []uint32
}

func newBufferStore(capacity int) *bufferStore {
	if capacity <= 0 {
		capacity = 256
	}
	return &bufferStore{cap: capacity, m: make(map[uint32]bufferedPacket, capacity)}
}

// put parks a frame and returns its buffer id.
func (b *bufferStore) put(inPort uint16, frame []byte) uint32 {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.order) >= b.cap {
		oldest := b.order[0]
		b.order = b.order[1:]
		delete(b.m, oldest)
	}
	b.next++
	if b.next == openflow.NoBuffer {
		b.next = 1
	}
	id := b.next
	b.m[id] = bufferedPacket{inPort: inPort, frame: append([]byte(nil), frame...)}
	b.order = append(b.order, id)
	return id
}

// take removes and returns the packet for id.
func (b *bufferStore) take(id uint32) (bufferedPacket, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	pkt, ok := b.m[id]
	if !ok {
		return bufferedPacket{}, false
	}
	delete(b.m, id)
	for i, v := range b.order {
		if v == id {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
	return pkt, true
}

// len reports the number of parked packets.
func (b *bufferStore) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.m)
}
