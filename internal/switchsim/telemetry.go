package switchsim

import (
	"attain/internal/telemetry"
)

// swCounters holds the switch's pre-resolved telemetry counters. All
// fields are nil when telemetry is disabled, making every update a
// nil-check no-op (see package telemetry).
type swCounters struct {
	flowModsInstalled *telemetry.Counter
	flowModsEvicted   *telemetry.Counter
	packetInsBuffered *telemetry.Counter
	tableMisses       *telemetry.Counter
	reconnects        *telemetry.Counter
}

func buildSwCounters(tele *telemetry.Telemetry, name string) swCounters {
	prefix := "switch." + name
	return swCounters{
		flowModsInstalled: tele.Counter(prefix + ".flow_mods_installed"),
		flowModsEvicted:   tele.Counter(prefix + ".flow_mods_evicted"),
		packetInsBuffered: tele.Counter(prefix + ".packet_ins_buffered"),
		tableMisses:       tele.Counter(prefix + ".table_misses"),
		reconnects:        tele.Counter(prefix + ".reconnects"),
	}
}
