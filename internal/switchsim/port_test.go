package switchsim

import (
	"testing"
	"time"

	"attain/internal/clock"
	"attain/internal/controller"
	"attain/internal/dataplane"
	"attain/internal/netaddr"
	"attain/internal/netem"
	"attain/internal/openflow"
)

func TestSetLinkDownDropsTraffic(t *testing.T) {
	r := newRig(t, controller.ProfileFloodlight, FailSecure)
	pingOK(t, r)

	r.sw.SetLinkDown(2, true)
	if _, err := r.h1.Ping(r.h2.IP(), 200*time.Millisecond); err == nil {
		t.Error("ping succeeded over a down link")
	}
	r.sw.SetLinkDown(2, false)
	if _, err := r.h1.Ping(r.h2.IP(), 2*time.Second); err != nil {
		t.Errorf("ping failed after link restore: %v", err)
	}
}

func TestPortModAdminDown(t *testing.T) {
	r := newRig(t, controller.ProfileFloodlight, FailSecure)
	pingOK(t, r)
	sc := r.ctrl.Switches()[1]
	if sc == nil {
		t.Fatal("no switch connection")
	}
	// Administratively disable port 2.
	if err := sc.Send(&openflow.PortMod{
		PortNo: 2,
		Config: openflow.PortConfigPortDown,
		Mask:   openflow.PortConfigPortDown,
	}); err != nil {
		t.Fatal(err)
	}
	// Wait for the config to land (ping keeps failing until it does, so
	// poll on the features view instead: the phy must show PORT_DOWN).
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		r.sw.mu.Lock()
		down := r.sw.ports[2].adminDown
		r.sw.mu.Unlock()
		if down {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := r.h1.Ping(r.h2.IP(), 200*time.Millisecond); err == nil {
		t.Error("ping succeeded over an administratively down port")
	}
	// Re-enable.
	if err := sc.Send(&openflow.PortMod{
		PortNo: 2,
		Config: 0,
		Mask:   openflow.PortConfigPortDown,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.h1.Ping(r.h2.IP(), 2*time.Second); err != nil {
		t.Errorf("ping failed after port re-enable: %v", err)
	}
}

// emergencyRig builds a one-switch network with emergency flows enabled.
func emergencyRig(t *testing.T) *rig {
	t.Helper()
	clk := clock.New()
	tr := netem.NewMemTransport()
	app := controller.NewLearningSwitch(controller.ProfileFloodlight)
	ctrl := controller.New(controller.Config{
		Name: "c1", ListenAddr: "c1", Transport: tr, App: app,
	}, clk)
	if err := ctrl.Start(); err != nil {
		t.Fatal(err)
	}
	sw := New(Config{
		Name: "s1", DPID: 1, ControllerAddr: "c1", Transport: tr,
		FailMode:          FailSecure,
		EmergencyFlows:    true,
		EchoInterval:      50 * time.Millisecond,
		EchoTimeout:       150 * time.Millisecond,
		ReconnectInterval: 50 * time.Millisecond,
	}, clk)
	h1 := dataplane.NewHost("h1", macA, ipA, clk)
	h2 := dataplane.NewHost("h2", macB, ipB, clk)
	h1.AttachOutput(sw.AttachPort(1, "p1", h1.Input))
	h2.AttachOutput(sw.AttachPort(2, "p2", h2.Input))
	sw.Start()
	r := &rig{clk: clk, ctrl: ctrl, app: app, sw: sw, h1: h1, h2: h2}
	t.Cleanup(func() { sw.Stop(); ctrl.Stop() })
	r.waitConnected(t, true)
	return r
}

func TestEmergencyFlowsServeWhenDisconnected(t *testing.T) {
	r := emergencyRig(t)
	pingOK(t, r)
	sc := r.ctrl.Switches()[1]
	if sc == nil {
		t.Fatal("no switch connection")
	}
	// Install bidirectional emergency flows for all traffic between the
	// two ports, before cutting the controller.
	for _, pair := range [][2]uint16{{1, 2}, {2, 1}} {
		m := openflow.MatchAll()
		m.Wildcards &^= openflow.WildcardInPort
		m.InPort = pair[0]
		if err := sc.Send(&openflow.FlowMod{
			Match:    m,
			Command:  openflow.FlowModAdd,
			Priority: 1,
			BufferID: openflow.NoBuffer,
			OutPort:  openflow.PortNone,
			Flags:    openflow.FlowModFlagEmergency,
			Actions:  []openflow.Action{openflow.ActionOutput{Port: pair[1]}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && r.sw.emerg.Len() < 2 {
		time.Sleep(2 * time.Millisecond)
	}
	if r.sw.emerg.Len() != 2 {
		t.Fatalf("emergency table has %d entries", r.sw.emerg.Len())
	}

	r.ctrl.Stop()
	r.waitConnected(t, false)
	// §4.3: the normal table was reset on entering emergency mode.
	if n := r.sw.Table().Len(); n != 0 {
		t.Errorf("normal table has %d entries in emergency mode", n)
	}
	// Traffic matching the emergency entries still flows.
	if _, err := r.h1.Ping(r.h2.IP(), 2*time.Second); err != nil {
		t.Errorf("ping over emergency flows failed: %v", err)
	}
}

func TestEmergencyFlowModRejectsTimeouts(t *testing.T) {
	r := emergencyRig(t)
	sc := r.ctrl.Switches()[1]
	if sc == nil {
		t.Fatal("no switch connection")
	}
	before := r.sw.emerg.Len()
	if err := sc.Send(&openflow.FlowMod{
		Match:       openflow.MatchAll(),
		Command:     openflow.FlowModAdd,
		IdleTimeout: 5, // §4.6 violation
		BufferID:    openflow.NoBuffer,
		OutPort:     openflow.PortNone,
		Flags:       openflow.FlowModFlagEmergency,
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if r.sw.emerg.Len() != before {
		t.Error("emergency flow with a timeout was installed")
	}
}

func TestEmergencyFlagRejectedWhenDisabled(t *testing.T) {
	r := newRig(t, controller.ProfileFloodlight, FailSecure) // EmergencyFlows off
	sc := r.ctrl.Switches()[1]
	if sc == nil {
		t.Fatal("no switch connection")
	}
	if err := sc.Send(&openflow.FlowMod{
		Match:    openflow.MatchAll(),
		Command:  openflow.FlowModAdd,
		BufferID: openflow.NoBuffer,
		OutPort:  openflow.PortNone,
		Flags:    openflow.FlowModFlagEmergency,
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if r.sw.emerg.Len() != 0 || r.sw.Table().Len() != 0 {
		t.Error("emergency flow installed despite the feature being disabled")
	}
}

func TestRewriteNWAndTPChecksums(t *testing.T) {
	// Build a UDP frame, rewrite nw_dst and tp_dst, and verify it still
	// decodes with valid checksums at the new addresses.
	srcIP := netaddr.MustParseIPv4("10.0.0.1")
	oldDst := netaddr.MustParseIPv4("10.0.0.2")
	newDst := netaddr.MustParseIPv4("10.0.0.9")
	dgram := &dataplane.UDP{SrcPort: 1000, DstPort: 53, Payload: []byte("query")}
	ip := &dataplane.IPv4{TTL: 64, Protocol: dataplane.ProtoUDP, Src: srcIP, Dst: oldDst,
		Payload: dgram.Marshal(srcIP, oldDst)}
	frame := (&dataplane.Ethernet{Dst: macB, Src: macA, EtherType: dataplane.EtherTypeIPv4,
		Payload: ip.Marshal()}).Marshal()

	if !rewriteFrame(frame, openflow.ActionSetNWDst{Addr: newDst}) {
		t.Fatal("SetNWDst rewrite failed")
	}
	if !rewriteFrame(frame, openflow.ActionSetTPDst{Port: 5353}) {
		t.Fatal("SetTPDst rewrite failed")
	}

	eth, err := dataplane.UnmarshalEthernet(frame)
	if err != nil {
		t.Fatal(err)
	}
	gotIP, err := dataplane.UnmarshalIPv4(eth.Payload)
	if err != nil {
		t.Fatalf("IP checksum broken after rewrite: %v", err)
	}
	if gotIP.Dst != newDst {
		t.Errorf("nw_dst = %s", gotIP.Dst)
	}
	gotUDP, err := dataplane.UnmarshalUDP(gotIP.Src, gotIP.Dst, gotIP.Payload)
	if err != nil {
		t.Fatalf("UDP checksum broken after rewrite: %v", err)
	}
	if gotUDP.DstPort != 5353 {
		t.Errorf("tp_dst = %d", gotUDP.DstPort)
	}
	if string(gotUDP.Payload) != "query" {
		t.Errorf("payload = %q", gotUDP.Payload)
	}
}

func TestRewriteTCPChecksum(t *testing.T) {
	srcIP := netaddr.MustParseIPv4("10.0.0.1")
	dstIP := netaddr.MustParseIPv4("10.0.0.2")
	newSrc := netaddr.MustParseIPv4("172.16.0.1")
	seg := &dataplane.TCP{SrcPort: 40000, DstPort: 80, Seq: 7, Flags: dataplane.TCPSyn, Window: 100}
	ip := &dataplane.IPv4{TTL: 64, Protocol: dataplane.ProtoTCP, Src: srcIP, Dst: dstIP,
		Payload: seg.Marshal(srcIP, dstIP)}
	frame := (&dataplane.Ethernet{Dst: macB, Src: macA, EtherType: dataplane.EtherTypeIPv4,
		Payload: ip.Marshal()}).Marshal()

	if !rewriteFrame(frame, openflow.ActionSetNWSrc{Addr: newSrc}) {
		t.Fatal("SetNWSrc rewrite failed")
	}
	eth, _ := dataplane.UnmarshalEthernet(frame)
	gotIP, err := dataplane.UnmarshalIPv4(eth.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if gotIP.Src != newSrc {
		t.Errorf("nw_src = %s", gotIP.Src)
	}
	if _, err := dataplane.UnmarshalTCP(gotIP.Src, gotIP.Dst, gotIP.Payload); err != nil {
		t.Fatalf("TCP checksum broken after rewrite: %v", err)
	}
}

func TestRewriteTOS(t *testing.T) {
	srcIP := netaddr.MustParseIPv4("10.0.0.1")
	dstIP := netaddr.MustParseIPv4("10.0.0.2")
	echo := &dataplane.ICMPEcho{IsRequest: true, Ident: 1, Seq: 1}
	ip := &dataplane.IPv4{TTL: 64, Protocol: dataplane.ProtoICMP, Src: srcIP, Dst: dstIP, Payload: echo.Marshal()}
	frame := (&dataplane.Ethernet{Dst: macB, Src: macA, EtherType: dataplane.EtherTypeIPv4,
		Payload: ip.Marshal()}).Marshal()
	if !rewriteFrame(frame, openflow.ActionSetNWTOS{TOS: 0x28}) {
		t.Fatal("SetNWTOS rewrite failed")
	}
	eth, _ := dataplane.UnmarshalEthernet(frame)
	gotIP, err := dataplane.UnmarshalIPv4(eth.Payload)
	if err != nil {
		t.Fatalf("IP checksum broken: %v", err)
	}
	if gotIP.TOS != 0x28 {
		t.Errorf("tos = %#x", gotIP.TOS)
	}
}

func TestRewriteRejectsNonIP(t *testing.T) {
	arp := &dataplane.ARP{Op: dataplane.ARPOpRequest, SenderMAC: macA}
	frame := (&dataplane.Ethernet{Dst: netaddr.Broadcast, Src: macA,
		EtherType: dataplane.EtherTypeARP, Payload: arp.Marshal()}).Marshal()
	if rewriteFrame(frame, openflow.ActionSetNWSrc{Addr: netaddr.IPv4{1, 2, 3, 4}}) {
		t.Error("IP rewrite applied to an ARP frame")
	}
	if rewriteFrame(frame, openflow.ActionSetTPSrc{Port: 1}) {
		t.Error("TP rewrite applied to an ARP frame")
	}
	// DL rewrites apply to any Ethernet frame.
	if !rewriteFrame(frame, openflow.ActionSetDLSrc{Addr: macB}) {
		t.Error("DL rewrite rejected")
	}
}
