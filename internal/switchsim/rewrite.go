package switchsim

import (
	"encoding/binary"

	"attain/internal/dataplane"
	"attain/internal/openflow"
)

// rewriteFrame applies one header-rewrite action to a raw Ethernet frame in
// place, fixing IP and transport checksums as needed. Unknown or
// inapplicable rewrites leave the frame unchanged and report false.
func rewriteFrame(frame []byte, action openflow.Action) bool {
	if len(frame) < 14 {
		return false
	}
	switch a := action.(type) {
	case openflow.ActionSetDLSrc:
		copy(frame[6:12], a.Addr[:])
		return true
	case openflow.ActionSetDLDst:
		copy(frame[0:6], a.Addr[:])
		return true
	case openflow.ActionStripVLAN:
		if binary.BigEndian.Uint16(frame[12:14]) != dataplane.EtherTypeVLAN || len(frame) < 18 {
			return false
		}
		copy(frame[12:], frame[16:])
		return true
	case openflow.ActionSetNWSrc:
		return rewriteIP(frame, 12, a.Addr[:])
	case openflow.ActionSetNWDst:
		return rewriteIP(frame, 16, a.Addr[:])
	case openflow.ActionSetNWTOS:
		ip := ipHeader(frame)
		if ip == nil {
			return false
		}
		ip[1] = a.TOS
		fixIPChecksum(ip)
		return true
	case openflow.ActionSetTPSrc:
		return rewriteTP(frame, 0, a.Port)
	case openflow.ActionSetTPDst:
		return rewriteTP(frame, 2, a.Port)
	default:
		return false
	}
}

// ipHeader returns the IPv4 header slice of an untagged IPv4 frame, or nil.
func ipHeader(frame []byte) []byte {
	if len(frame) < 14+20 {
		return nil
	}
	if binary.BigEndian.Uint16(frame[12:14]) != dataplane.EtherTypeIPv4 {
		return nil
	}
	ihl := int(frame[14]&0x0f) * 4
	if ihl < 20 || len(frame) < 14+ihl {
		return nil
	}
	return frame[14 : 14+ihl]
}

func fixIPChecksum(ip []byte) {
	ip[10], ip[11] = 0, 0
	cs := dataplane.Checksum(ip)
	binary.BigEndian.PutUint16(ip[10:12], cs)
}

// rewriteIP replaces 4 address bytes at the given IP-header offset and
// recomputes the IP and transport checksums.
func rewriteIP(frame []byte, ipOff int, addr []byte) bool {
	ip := ipHeader(frame)
	if ip == nil {
		return false
	}
	copy(ip[ipOff:ipOff+4], addr)
	fixIPChecksum(ip)
	fixTransportChecksum(frame, ip)
	return true
}

// rewriteTP replaces the 2-byte transport port at the given transport
// offset and recomputes the transport checksum.
func rewriteTP(frame []byte, tpOff int, port uint16) bool {
	ip := ipHeader(frame)
	if ip == nil {
		return false
	}
	proto := ip[9]
	if proto != dataplane.ProtoTCP && proto != dataplane.ProtoUDP {
		return false
	}
	seg := frame[14+len(ip):]
	if len(seg) < tpOff+2 {
		return false
	}
	binary.BigEndian.PutUint16(seg[tpOff:tpOff+2], port)
	fixTransportChecksum(frame, ip)
	return true
}

// fixTransportChecksum recomputes the TCP or UDP checksum after a header
// rewrite, using the (possibly rewritten) IP addresses for the
// pseudo-header.
func fixTransportChecksum(frame, ip []byte) {
	proto := ip[9]
	seg := frame[14+len(ip):]
	var csOff int
	switch proto {
	case dataplane.ProtoTCP:
		if len(seg) < 20 {
			return
		}
		csOff = 16
	case dataplane.ProtoUDP:
		if len(seg) < 8 {
			return
		}
		csOff = 6
	default:
		return
	}
	seg[csOff], seg[csOff+1] = 0, 0
	// Reuse the dataplane checksum over pseudo-header + segment.
	var src, dst [4]byte
	copy(src[:], ip[12:16])
	copy(dst[:], ip[16:20])
	cs := transportChecksumHelper(src, dst, proto, seg)
	if proto == dataplane.ProtoUDP && cs == 0 {
		cs = 0xffff
	}
	binary.BigEndian.PutUint16(seg[csOff:csOff+2], cs)
}

// transportChecksumHelper mirrors the dataplane pseudo-header checksum for
// raw byte manipulation.
func transportChecksumHelper(src, dst [4]byte, proto uint8, segment []byte) uint16 {
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(src[0:2]))
	sum += uint32(binary.BigEndian.Uint16(src[2:4]))
	sum += uint32(binary.BigEndian.Uint16(dst[0:2]))
	sum += uint32(binary.BigEndian.Uint16(dst[2:4]))
	sum += uint32(proto)
	sum += uint32(len(segment))
	s := segment
	for len(s) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(s))
		s = s[2:]
	}
	if len(s) == 1 {
		sum += uint32(s[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
