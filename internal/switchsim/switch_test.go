package switchsim

import (
	"testing"
	"time"

	"attain/internal/clock"
	"attain/internal/controller"
	"attain/internal/dataplane"
	"attain/internal/netem"
	"attain/internal/openflow"
)

// rig is a one-switch, two-host test network with a learning-switch
// controller.
type rig struct {
	clk  clock.Clock
	ctrl *controller.Controller
	app  *controller.LearningSwitch
	sw   *Switch
	h1   *dataplane.Host
	h2   *dataplane.Host
}

func newRig(t *testing.T, profile controller.Profile, mode FailMode) *rig {
	t.Helper()
	clk := clock.New()
	tr := netem.NewMemTransport()
	app := controller.NewLearningSwitch(profile)
	ctrl := controller.New(controller.Config{
		Name: "c1", ListenAddr: "c1", Transport: tr, App: app,
	}, clk)
	if err := ctrl.Start(); err != nil {
		t.Fatal(err)
	}
	sw := New(Config{
		Name: "s1", DPID: 1, ControllerAddr: "c1", Transport: tr,
		FailMode:          mode,
		EchoInterval:      50 * time.Millisecond,
		EchoTimeout:       150 * time.Millisecond,
		ReconnectInterval: 50 * time.Millisecond,
		ExpiryInterval:    50 * time.Millisecond,
	}, clk)

	h1 := dataplane.NewHost("h1", macA, ipA, clk)
	h2 := dataplane.NewHost("h2", macB, ipB, clk)
	h1.AttachOutput(sw.AttachPort(1, "s1-eth1", h1.Input))
	h2.AttachOutput(sw.AttachPort(2, "s1-eth2", h2.Input))
	sw.Start()

	r := &rig{clk: clk, ctrl: ctrl, app: app, sw: sw, h1: h1, h2: h2}
	t.Cleanup(func() {
		sw.Stop()
		ctrl.Stop()
	})
	r.waitConnected(t, true)
	return r
}

func (r *rig) waitConnected(t *testing.T, want bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if r.sw.Connected() == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("switch connected state never became %v", want)
}

func TestSwitchConnectsAndHandshakes(t *testing.T) {
	r := newRig(t, controller.ProfileFloodlight, FailSecure)
	sws := r.ctrl.Switches()
	if len(sws) != 1 {
		t.Fatalf("controller sees %d switches, want 1", len(sws))
	}
	sc, ok := sws[1]
	if !ok {
		t.Fatal("controller did not record DPID 1")
	}
	if got := len(sc.Ports()); got != 2 {
		t.Errorf("FEATURES_REPLY carried %d ports, want 2", got)
	}
}

func pingOK(t *testing.T, r *rig) time.Duration {
	t.Helper()
	rtt, err := r.h1.Ping(r.h2.IP(), 2*time.Second)
	if err != nil {
		t.Fatalf("ping: %v", err)
	}
	return rtt
}

func TestPingThroughLearningSwitch(t *testing.T) {
	for _, profile := range []controller.Profile{
		controller.ProfileFloodlight, controller.ProfilePOX, controller.ProfileRyu,
	} {
		t.Run(profile.String(), func(t *testing.T) {
			r := newRig(t, profile, FailSecure)
			pingOK(t, r)
			// After the first exchange both MACs are learned.
			tbl := r.app.MACTable(1)
			if tbl[macA] != 1 || tbl[macB] != 2 {
				t.Errorf("controller MAC table = %v", tbl)
			}
		})
	}
}

func TestSecondPingUsesInstalledFlows(t *testing.T) {
	r := newRig(t, controller.ProfileFloodlight, FailSecure)
	pingOK(t, r)
	// Flows for the echo exchange are installed; wait for writes to land.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && r.sw.Table().Len() < 2 {
		time.Sleep(5 * time.Millisecond)
	}
	if r.sw.Table().Len() < 2 {
		t.Fatalf("flow table has %d entries, want >= 2", r.sw.Table().Len())
	}
	before := r.sw.Stats().PacketInsSent
	pingOK(t, r)
	after := r.sw.Stats().PacketInsSent
	if after != before {
		t.Errorf("second ping generated %d extra packet-ins, want 0", after-before)
	}
}

func TestRyuInstallsL2OnlyMatches(t *testing.T) {
	r := newRig(t, controller.ProfileRyu, FailSecure)
	pingOK(t, r)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && r.sw.Table().Len() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	snap := r.sw.Table().Snapshot()
	if len(snap) == 0 {
		t.Fatal("no flows installed")
	}
	for _, e := range snap {
		if e.Match.Wildcards&openflow.WildcardDLSrc != 0 || e.Match.Wildcards&openflow.WildcardDLDst != 0 {
			t.Errorf("Ryu flow does not pin L2 addresses: %s", e.Match)
		}
		if e.Match.NWSrcMaskBits() != 0 || e.Match.NWDstMaskBits() != 0 {
			t.Errorf("Ryu flow pins network addresses: %s", e.Match)
		}
	}
}

func TestFloodlightInstallsExactMatches(t *testing.T) {
	r := newRig(t, controller.ProfileFloodlight, FailSecure)
	pingOK(t, r)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && r.sw.Table().Len() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	snap := r.sw.Table().Snapshot()
	if len(snap) == 0 {
		t.Fatal("no flows installed")
	}
	for _, e := range snap {
		if e.Match.NWSrcMaskBits() != 32 || e.Match.NWDstMaskBits() != 32 {
			t.Errorf("Floodlight flow missing exact nw match: %s", e.Match)
		}
		if e.IdleTimeout != 5 {
			t.Errorf("Floodlight idle timeout = %d, want 5", e.IdleTimeout)
		}
	}
}

func TestFailSecureDropsAfterDisconnect(t *testing.T) {
	r := newRig(t, controller.ProfileFloodlight, FailSecure)
	pingOK(t, r)
	r.ctrl.Stop()
	r.waitConnected(t, false)
	// Let any installed flows expire (idle 5s is too long to wait; delete
	// them directly to model expiry).
	r.sw.Table().Clear()
	if _, err := r.h1.Ping(r.h2.IP(), 200*time.Millisecond); err == nil {
		t.Error("ping succeeded through fail-secure switch with empty table")
	}
	st := r.sw.Stats()
	if st.DroppedDisconnected == 0 {
		t.Error("no drops counted while disconnected")
	}
}

func TestFailSecureExistingFlowsStillForward(t *testing.T) {
	r := newRig(t, controller.ProfileFloodlight, FailSecure)
	pingOK(t, r)
	// Wait for ICMP flows to be installed before cutting the controller.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && r.sw.Table().Len() < 2 {
		time.Sleep(5 * time.Millisecond)
	}
	r.ctrl.Stop()
	r.waitConnected(t, false)
	// ICMP flows match on the same 5-tuple, so a repeat ping reuses them.
	if _, err := r.h1.Ping(r.h2.IP(), 2*time.Second); err != nil {
		t.Errorf("ping over existing flows failed: %v", err)
	}
}

func TestFailSafeStandaloneForwarding(t *testing.T) {
	r := newRig(t, controller.ProfileFloodlight, FailSafe)
	pingOK(t, r)
	r.ctrl.Stop()
	r.waitConnected(t, false)
	r.sw.Table().Clear()
	if _, err := r.h1.Ping(r.h2.IP(), 2*time.Second); err != nil {
		t.Errorf("standalone ping failed: %v", err)
	}
	if r.sw.Stats().StandaloneForwards == 0 {
		t.Error("standalone path not exercised")
	}
}

func TestSwitchReconnects(t *testing.T) {
	r := newRig(t, controller.ProfileFloodlight, FailSecure)
	// Kill and restart the controller on the same address.
	r.ctrl.Stop()
	r.waitConnected(t, false)

	tr := netem.NewMemTransport()
	_ = tr // placeholder to show a fresh transport is NOT used; we reuse the rig's.
	app := controller.NewLearningSwitch(controller.ProfileFloodlight)
	ctrl2 := controller.New(controller.Config{
		Name: "c1b", ListenAddr: "c1", Transport: rigTransport(r), App: app,
	}, r.clk)
	if err := ctrl2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ctrl2.Stop)
	r.waitConnected(t, true)
	if r.sw.Stats().Reconnects == 0 {
		t.Error("reconnect counter did not advance")
	}
}

// rigTransport digs the transport back out of the rig's controller config;
// kept as a helper so the reconnect test can share the mem network.
func rigTransport(r *rig) netem.Transport { return r.sw.cfg.Transport }

func TestPacketOutWithData(t *testing.T) {
	r := newRig(t, controller.ProfileFloodlight, FailSecure)
	// Build an ICMP frame "from h1 to h2" and have the controller inject
	// it via PACKET_OUT with explicit data toward port 2.
	echo := &dataplane.ICMPEcho{IsRequest: true, Ident: 42, Seq: 1}
	ip := &dataplane.IPv4{TTL: 64, Protocol: dataplane.ProtoICMP, Src: ipA, Dst: ipB, Payload: echo.Marshal()}
	frame := (&dataplane.Ethernet{Dst: macB, Src: macA, EtherType: dataplane.EtherTypeIPv4, Payload: ip.Marshal()}).Marshal()

	sc := r.ctrl.Switches()[1]
	if sc == nil {
		t.Fatal("no switch connection")
	}
	before := r.h2.Stats().RxFrames
	err := sc.Send(&openflow.PacketOut{
		BufferID: openflow.NoBuffer,
		InPort:   openflow.PortNone,
		Actions:  []openflow.Action{openflow.ActionOutput{Port: 2}},
		Data:     frame,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && r.h2.Stats().RxFrames == before {
		time.Sleep(5 * time.Millisecond)
	}
	if r.h2.Stats().RxFrames == before {
		t.Error("packet-out frame never reached h2")
	}
}

func TestFlowExpiryIdleTimeout(t *testing.T) {
	clk := clock.NewScaled(20) // 20x so a 5s idle timeout passes in 250ms
	tr := netem.NewMemTransport()
	app := controller.NewLearningSwitch(controller.ProfileFloodlight)
	ctrl := controller.New(controller.Config{Name: "c1", ListenAddr: "c1", Transport: tr, App: app}, clk)
	if err := ctrl.Start(); err != nil {
		t.Fatal(err)
	}
	sw := New(Config{
		Name: "s1", DPID: 1, ControllerAddr: "c1", Transport: tr,
		ExpiryInterval: 100 * time.Millisecond,
	}, clk)
	h1 := dataplane.NewHost("h1", macA, ipA, clk)
	h2 := dataplane.NewHost("h2", macB, ipB, clk)
	h1.AttachOutput(sw.AttachPort(1, "p1", h1.Input))
	h2.AttachOutput(sw.AttachPort(2, "p2", h2.Input))
	sw.Start()
	t.Cleanup(func() { sw.Stop(); ctrl.Stop() })

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !sw.Connected() {
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := h1.Ping(ipB, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	for time.Now().Before(deadline) && sw.Table().Len() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if sw.Table().Len() == 0 {
		t.Fatal("no flows installed")
	}
	// Idle timeout is 5 virtual seconds = 250ms wall; wait for eviction.
	for time.Now().Before(deadline) && sw.Table().Len() > 0 {
		time.Sleep(20 * time.Millisecond)
	}
	if n := sw.Table().Len(); n != 0 {
		t.Errorf("flows remaining after idle timeout: %d", n)
	}
}
