package switchsim

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"attain/internal/clock"
	"attain/internal/dataplane"
	"attain/internal/netaddr"
	"attain/internal/netem"
	"attain/internal/openflow"
	"attain/internal/telemetry"
)

// FailMode selects the switch behaviour when the control connection is
// lost, mirroring Open vSwitch's fail-mode setting.
type FailMode int

const (
	// FailSecure drops packets that miss the flow table while
	// disconnected; existing entries keep forwarding until they expire.
	FailSecure FailMode = iota + 1
	// FailSafe (OVS "standalone") reverts to independent MAC-learning
	// forwarding while disconnected.
	FailSafe
)

// String returns "secure" or "safe".
func (m FailMode) String() string {
	switch m {
	case FailSecure:
		return "secure"
	case FailSafe:
		return "safe"
	default:
		return "unknown"
	}
}

// Config describes one switch.
type Config struct {
	// Name is a human-readable identifier, e.g. "s1".
	Name string
	// DPID is the OpenFlow datapath id.
	DPID uint64
	// ControllerAddr is dialed via Transport for the control channel.
	ControllerAddr string
	// Transport supplies the control-plane network.
	Transport netem.Transport
	// FailMode selects disconnected behaviour (default FailSecure).
	FailMode FailMode
	// NBuffers is the PACKET_IN buffer capacity (default 256).
	NBuffers int
	// MissSendLen caps PACKET_IN payload bytes when buffering (default 128).
	MissSendLen uint16
	// TableSize caps the flow table (default 64k).
	TableSize int
	// EchoInterval is the liveness probe period (default 2s).
	EchoInterval time.Duration
	// EchoTimeout declares the connection dead after this silence
	// (default 3 echo intervals).
	EchoTimeout time.Duration
	// ReconnectInterval paces redial attempts (default 2s).
	ReconnectInterval time.Duration
	// HandshakeTimeout bounds the HELLO exchange (default 5s).
	HandshakeTimeout time.Duration
	// ExpiryInterval paces flow timeout sweeps (default 500ms).
	ExpiryInterval time.Duration
	// Telemetry, when non-nil, receives table install/evict, fail-mode
	// transition, and packet-in trace events plus per-switch counters. Nil
	// disables collection.
	Telemetry *telemetry.Telemetry
	// OnConnError, when non-nil, is called with dial and handshake
	// failures from the controller connection path (both the goroutine
	// connLoop and the shard-hosted Admit path). Fabric bring-up uses it
	// to fail fast on resource exhaustion (fd limits) instead of silently
	// retrying forever. Called from connection goroutines; must be
	// safe for concurrent use.
	OnConnError func(error)
	// EmergencyFlows enables OpenFlow 1.0 §4.3 emergency flow entries
	// (OFPFF_EMERG): flow mods flagged emergency populate a separate
	// cache; on control-channel loss in fail-secure mode the normal
	// table is reset and only emergency entries forward. Off by default
	// because the paper's OVS 1.9.3 substrate (like OVS generally) does
	// not implement emergency mode — its fail-secure keeps normal flows
	// until they expire, which Table II depends on.
	EmergencyFlows bool
}

func (c *Config) setDefaults() {
	if c.FailMode == 0 {
		c.FailMode = FailSecure
	}
	if c.NBuffers == 0 {
		c.NBuffers = 256
	}
	if c.MissSendLen == 0 {
		c.MissSendLen = 128
	}
	if c.EchoInterval <= 0 {
		c.EchoInterval = 2 * time.Second
	}
	if c.EchoTimeout <= 0 {
		c.EchoTimeout = 3 * c.EchoInterval
	}
	if c.ReconnectInterval <= 0 {
		c.ReconnectInterval = 2 * time.Second
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	if c.ExpiryInterval <= 0 {
		c.ExpiryInterval = 500 * time.Millisecond
	}
}

// Stats counts switch activity.
type Stats struct {
	RxFrames            uint64
	TxFrames            uint64
	TableMisses         uint64
	PacketInsSent       uint64
	PacketOutsApplied   uint64
	FlowModsApplied     uint64
	DroppedDisconnected uint64
	StandaloneForwards  uint64
	Reconnects          uint64
}

// Switch is a simulated OpenFlow 1.0 switch datapath plus its controller
// channel.
type Switch struct {
	cfg   Config
	clk   clock.Clock
	table *Table
	emerg *Table
	bufs  *bufferStore
	tele  *telemetry.Telemetry
	ctrs  swCounters

	mu        sync.Mutex
	ports     map[uint16]*swPort
	macTable  map[netaddr.MAC]uint16 // standalone learning table
	conn      ctrlChan
	connected bool
	stats     Stats

	xid     atomic.Uint32
	stop    chan struct{}
	wg      sync.WaitGroup
	started bool
}

type swPort struct {
	no   uint16
	name string
	mac  netaddr.MAC
	out  func([]byte)
	// adminDown reflects OFPPC_PORT_DOWN set via PORT_MOD.
	adminDown bool
	// linkDown models a lost carrier (SetLinkDown), reported as
	// OFPPS_LINK_DOWN in PORT_STATUS.
	linkDown bool
}

func (p *swPort) usable() bool { return !p.adminDown && !p.linkDown }

func (p *swPort) phy() openflow.PhyPort {
	desc := openflow.PhyPort{
		PortNo: p.no, HWAddr: p.mac, Name: p.name,
		Curr: openflow.PortFeature100MbFD | openflow.PortFeatureCopper,
	}
	if p.adminDown {
		desc.Config |= openflow.PortConfigPortDown
	}
	if p.linkDown {
		desc.State |= openflow.PortStateLinkDown
	}
	return desc
}

// New creates a switch; call AttachPort to wire ports, then Start.
func New(cfg Config, clk clock.Clock) *Switch {
	cfg.setDefaults()
	return &Switch{
		cfg:      cfg,
		clk:      clk,
		table:    NewTable(cfg.TableSize),
		emerg:    NewTable(cfg.TableSize),
		bufs:     newBufferStore(cfg.NBuffers),
		tele:     cfg.Telemetry,
		ctrs:     buildSwCounters(cfg.Telemetry, cfg.Name),
		ports:    make(map[uint16]*swPort),
		macTable: make(map[netaddr.MAC]uint16),
		stop:     make(chan struct{}),
	}
}

// Name returns the switch name.
func (s *Switch) Name() string { return s.cfg.Name }

// DPID returns the datapath id.
func (s *Switch) DPID() uint64 { return s.cfg.DPID }

// Table exposes the flow table for inspection by tests and monitors.
func (s *Switch) Table() *Table { return s.table }

// Stats returns a snapshot of the activity counters.
func (s *Switch) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Connected reports whether the control channel is currently up.
func (s *Switch) Connected() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.connected
}

// AttachPort registers data-plane port no with the given transmit function
// and returns the function to call with frames arriving on that port.
func (s *Switch) AttachPort(no uint16, name string, out func([]byte)) func([]byte) {
	mac := netaddr.MAC{0x0e, 0x00, byte(s.cfg.DPID >> 8), byte(s.cfg.DPID), byte(no >> 8), byte(no)}
	s.mu.Lock()
	s.ports[no] = &swPort{no: no, name: name, mac: mac, out: out}
	s.mu.Unlock()
	return func(frame []byte) { s.input(no, frame) }
}

// Start launches the controller connection loop and the expiry sweeper.
func (s *Switch) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()

	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		s.connLoop()
	}()
	go func() {
		defer s.wg.Done()
		s.expiryLoop()
	}()
}

// Stop shuts the switch down and waits for its goroutines.
func (s *Switch) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	select {
	case <-s.stop:
		s.mu.Unlock()
		s.wg.Wait()
		return
	default:
	}
	close(s.stop)
	conn := s.conn
	s.mu.Unlock()
	if conn != nil {
		conn.close()
	}
	s.wg.Wait()
}

// ---- Data path ----

// SetLinkDown simulates carrier loss (or restoration) on a port: traffic
// stops flowing and the controller is notified with a PORT_STATUS message.
func (s *Switch) SetLinkDown(portNo uint16, down bool) {
	s.mu.Lock()
	p := s.ports[portNo]
	var (
		conn ctrlChan
		desc openflow.PhyPort
	)
	if p != nil {
		p.linkDown = down
		desc = p.phy()
		conn = s.conn
	}
	s.mu.Unlock()
	if p == nil || conn == nil {
		return
	}
	_ = conn.sendAsync(s.nextXid(), &openflow.PortStatus{
		Reason: openflow.PortStatusModify,
		Desc:   desc,
	})
}

// input processes one frame arriving on a data-plane port.
func (s *Switch) input(inPort uint16, frame []byte) {
	s.mu.Lock()
	s.stats.RxFrames++
	connected := s.connected
	mode := s.cfg.FailMode
	if p := s.ports[inPort]; p != nil && !p.usable() {
		// Frames on down ports are dropped at ingress (OFPPC_NO_RECV
		// behaviour is implied by PORT_DOWN).
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()

	fields, err := dataplane.Fields(inPort, frame)
	if err != nil {
		return
	}
	now := s.clk.Now()

	if connected {
		if e := s.table.Lookup(fields, len(frame), now); e != nil {
			s.applyActions(e.Actions, inPort, frame)
			return
		}
		s.mu.Lock()
		s.stats.TableMisses++
		s.mu.Unlock()
		s.ctrs.tableMisses.Inc()
		s.sendPacketIn(inPort, frame, openflow.PacketInReasonNoMatch, 0)
		return
	}

	switch mode {
	case FailSafe:
		s.standaloneForward(inPort, frame, fields)
	default: // FailSecure
		if s.cfg.EmergencyFlows {
			// Emergency mode (§4.3): only emergency entries forward.
			if e := s.emerg.Lookup(fields, len(frame), now); e != nil {
				s.applyActions(e.Actions, inPort, frame)
				return
			}
		} else if e := s.table.Lookup(fields, len(frame), now); e != nil {
			// OVS-style fail-secure: existing normal entries keep
			// forwarding until they expire.
			s.applyActions(e.Actions, inPort, frame)
			return
		}
		s.mu.Lock()
		s.stats.TableMisses++
		s.stats.DroppedDisconnected++
		s.mu.Unlock()
		s.ctrs.tableMisses.Inc()
	}
}

// standaloneForward implements fail-safe MAC-learning forwarding.
func (s *Switch) standaloneForward(inPort uint16, frame []byte, fields openflow.FieldView) {
	s.mu.Lock()
	s.macTable[fields.DLSrc] = inPort
	outPort, known := s.macTable[fields.DLDst]
	s.stats.StandaloneForwards++
	s.mu.Unlock()
	if known && !fields.DLDst.IsMulticast() {
		s.outputTo(outPort, frame)
		return
	}
	s.flood(inPort, frame)
}

// flood transmits frame on every usable port except inPort.
func (s *Switch) flood(inPort uint16, frame []byte) {
	s.mu.Lock()
	outs := make([]*swPort, 0, len(s.ports))
	for _, p := range s.ports {
		if p.no != inPort && p.usable() {
			outs = append(outs, p)
		}
	}
	s.stats.TxFrames += uint64(len(outs))
	s.mu.Unlock()
	for _, p := range outs {
		p.out(frame)
	}
}

// outputTo transmits frame on one physical port.
func (s *Switch) outputTo(port uint16, frame []byte) {
	s.mu.Lock()
	p := s.ports[port]
	if p != nil && !p.usable() {
		p = nil
	}
	if p != nil {
		s.stats.TxFrames++
	}
	s.mu.Unlock()
	if p != nil {
		p.out(frame)
	}
}

// applyActions executes an OpenFlow 1.0 action list on a frame. Rewrites
// are applied to a private copy so upstream buffers are not mutated.
func (s *Switch) applyActions(actions []openflow.Action, inPort uint16, frame []byte) {
	work := append([]byte(nil), frame...)
	for _, a := range actions {
		switch act := a.(type) {
		case openflow.ActionOutput:
			s.output(act.Port, act.MaxLen, inPort, work)
		case openflow.ActionEnqueue:
			s.output(act.Port, 0, inPort, work)
		default:
			rewriteFrame(work, a)
		}
	}
}

// output resolves an OpenFlow output port (physical or virtual).
func (s *Switch) output(port uint16, maxLen uint16, inPort uint16, frame []byte) {
	switch port {
	case openflow.PortFlood, openflow.PortAll:
		s.flood(inPort, frame)
	case openflow.PortInPort:
		s.outputTo(inPort, frame)
	case openflow.PortController:
		s.sendPacketIn(inPort, frame, openflow.PacketInReasonAction, maxLen)
	case openflow.PortTable:
		// Valid only for PACKET_OUT: run the frame through the table.
		fields, err := dataplane.Fields(inPort, frame)
		if err != nil {
			return
		}
		if e := s.table.Lookup(fields, len(frame), s.clk.Now()); e != nil {
			s.applyActions(e.Actions, inPort, frame)
		}
	case openflow.PortLocal, openflow.PortNone, openflow.PortNormal:
		// Not modelled: no local stack, no NORMAL pipeline while connected.
	default:
		s.outputTo(port, frame)
	}
}

// sendPacketIn buffers the frame and notifies the controller. The send is
// non-blocking: if the control channel is congested the notification is
// dropped, like a real switch under pressure.
func (s *Switch) sendPacketIn(inPort uint16, frame []byte, reason openflow.PacketInReason, maxLen uint16) {
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	if conn == nil {
		return
	}

	pi := &openflow.PacketIn{
		TotalLen: uint16(len(frame)),
		InPort:   inPort,
		Reason:   reason,
	}
	limit := int(s.cfg.MissSendLen)
	if reason == openflow.PacketInReasonAction && maxLen > 0 {
		limit = int(maxLen)
	}
	if s.cfg.NBuffers > 0 {
		pi.BufferID = s.bufs.put(inPort, frame)
		if len(frame) > limit {
			pi.Data = append([]byte(nil), frame[:limit]...)
		} else {
			pi.Data = append([]byte(nil), frame...)
		}
	} else {
		pi.BufferID = openflow.NoBuffer
		pi.Data = append([]byte(nil), frame...)
	}
	if conn.sendAsync(s.nextXid(), pi) {
		s.mu.Lock()
		s.stats.PacketInsSent++
		s.mu.Unlock()
		s.ctrs.packetInsBuffered.Inc()
		s.tele.Emit(telemetry.Event{
			Layer: telemetry.LayerSwitch, Kind: telemetry.KindPacketIn,
			Node: s.cfg.Name, MsgType: "PACKET_IN", Detail: pi.Reason.String(),
		})
	}
}

func (s *Switch) nextXid() uint32 { return s.xid.Add(1) }

// ---- Controller channel ----

// ctrlChan abstracts the switch's view of its control connection: the
// goroutine path implements it with *ctrlConn (a write-pump goroutine per
// connection), the shard-hosted path with *hostedConn (writes queued to
// the owning shard loop and coalesced per batch). All message handlers
// dispatch through this interface, so the datapath logic is identical in
// both modes.
type ctrlChan interface {
	// send queues a message, blocking while there is room; net.ErrClosed
	// once the channel is down.
	send(xid uint32, msg openflow.Message) error
	// sendAsync queues a message without blocking, reporting success.
	sendAsync(xid uint32, msg openflow.Message) bool
	// close tears the channel down (idempotent).
	close()
}

// ctrlConn wraps one control connection with a write pump so data-path
// sends never block behind a slow peer.
type ctrlConn struct {
	conn   net.Conn
	outCh  chan []byte
	closed chan struct{}
	once   sync.Once
	lastRx atomic.Int64 // unix nanos of last received message (virtual clock)
}

func newCtrlConn(conn net.Conn, now time.Time) *ctrlConn {
	c := &ctrlConn{
		conn:   conn,
		outCh:  make(chan []byte, 1024),
		closed: make(chan struct{}),
	}
	c.lastRx.Store(now.UnixNano())
	go c.writePump()
	return c
}

func (c *ctrlConn) writePump() {
	for {
		select {
		case <-c.closed:
			return
		case buf := <-c.outCh:
			// The pump owns each queued buffer; the conn has copied the
			// bytes by the time Write returns, so recycle immediately.
			_, err := c.conn.Write(buf)
			openflow.PutBuffer(buf)
			if err != nil {
				c.close()
				return
			}
		}
	}
}

// send queues a message, blocking while there is room. The frame is
// marshalled into a pooled buffer that the write pump recycles.
func (c *ctrlConn) send(xid uint32, msg openflow.Message) error {
	buf, err := openflow.AppendMessage(openflow.GetBuffer(), xid, msg)
	if err != nil {
		openflow.PutBuffer(buf)
		return err
	}
	select {
	case c.outCh <- buf:
		return nil
	case <-c.closed:
		openflow.PutBuffer(buf)
		return net.ErrClosed
	}
}

// sendAsync queues a message without blocking, reporting success.
func (c *ctrlConn) sendAsync(xid uint32, msg openflow.Message) bool {
	buf, err := openflow.AppendMessage(openflow.GetBuffer(), xid, msg)
	if err != nil {
		openflow.PutBuffer(buf)
		return false
	}
	select {
	case c.outCh <- buf:
		return true
	case <-c.closed:
		openflow.PutBuffer(buf)
		return false
	default:
		openflow.PutBuffer(buf)
		return false
	}
}

func (c *ctrlConn) close() {
	c.once.Do(func() {
		close(c.closed)
		_ = c.conn.Close()
	})
}

// connLoop dials the controller, runs the session, and redials on failure.
func (s *Switch) connLoop() {
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		if err := s.runSession(); err != nil {
			s.setConnected(false, nil)
		}
		select {
		case <-s.stop:
			return
		case <-s.clk.After(s.cfg.ReconnectInterval):
			s.mu.Lock()
			s.stats.Reconnects++
			s.mu.Unlock()
			s.ctrs.reconnects.Inc()
		}
	}
}

func (s *Switch) setConnected(up bool, conn ctrlChan) {
	s.mu.Lock()
	wasUp := s.connected
	s.connected = up
	s.conn = conn
	if up {
		// Leaving standalone mode: forget learned MACs.
		s.macTable = make(map[netaddr.MAC]uint16)
	}
	enterEmergency := wasUp && !up && s.cfg.EmergencyFlows && s.cfg.FailMode == FailSecure
	s.mu.Unlock()
	if enterEmergency {
		// §4.3: entering emergency mode resets the normal flow table.
		s.table.Clear()
	}
	if wasUp != up && s.tele.Enabled() {
		detail := "connected"
		if !up {
			detail = "disconnected fail_" + s.cfg.FailMode.String()
		}
		s.tele.Emit(telemetry.Event{
			Layer: telemetry.LayerSwitch, Kind: telemetry.KindFailMode,
			Node: s.cfg.Name, Detail: detail,
		})
	}
}

// runSession performs one complete controller session: dial, handshake,
// then serve messages until the connection dies or the switch stops.
func (s *Switch) runSession() error {
	raw, err := s.cfg.Transport.Dial(s.cfg.ControllerAddr)
	if err != nil {
		err = fmt.Errorf("dial controller: %w", err)
		if s.cfg.OnConnError != nil {
			s.cfg.OnConnError(err)
		}
		return err
	}
	conn := newCtrlConn(raw, s.clk.Now())
	defer conn.close()

	if err := s.handshake(conn); err != nil {
		err = fmt.Errorf("handshake: %w", err)
		if s.cfg.OnConnError != nil {
			s.cfg.OnConnError(err)
		}
		return err
	}
	s.setConnected(true, conn)
	defer s.setConnected(false, nil)

	// Echo prober: declares the session dead after EchoTimeout silence.
	proberDone := make(chan struct{})
	go func() {
		defer close(proberDone)
		for {
			select {
			case <-conn.closed:
				return
			case <-s.stop:
				conn.close()
				return
			case <-s.clk.After(s.cfg.EchoInterval):
				last := time.Unix(0, conn.lastRx.Load())
				if s.clk.Now().Sub(last) > s.cfg.EchoTimeout {
					conn.close()
					return
				}
				_ = conn.sendAsync(s.nextXid(), &openflow.EchoRequest{Data: []byte(s.cfg.Name)})
			}
		}
	}()
	defer func() { <-proberDone }()

	// One pooled read buffer serves the whole session: decoded messages do
	// not alias it, so the read loop allocates no per-message buffers.
	mr := openflow.NewMessageReader(conn.conn)
	defer mr.Close()
	for {
		hdr, msg, err := mr.Read()
		if err != nil {
			return fmt.Errorf("read: %w", err)
		}
		conn.lastRx.Store(s.clk.Now().UnixNano())
		s.handleControl(conn, hdr, msg)
	}
}

// handshake sends HELLO and waits for the peer's HELLO.
func (s *Switch) handshake(conn *ctrlConn) error {
	if err := conn.send(s.nextXid(), &openflow.Hello{}); err != nil {
		return err
	}
	type result struct {
		msg openflow.Message
		err error
	}
	ch := make(chan result, 1)
	go func() {
		_, msg, err := openflow.ReadMessage(conn.conn)
		ch <- result{msg, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			return r.err
		}
		if r.msg.Type() != openflow.TypeHello {
			return fmt.Errorf("expected HELLO, got %s", r.msg.Type())
		}
		return nil
	case <-s.clk.After(s.cfg.HandshakeTimeout):
		conn.close()
		return errors.New("timed out waiting for HELLO")
	}
}

// handleControl dispatches one controller-to-switch message.
func (s *Switch) handleControl(conn ctrlChan, hdr openflow.Header, msg openflow.Message) {
	switch m := msg.(type) {
	case *openflow.EchoRequest:
		_ = conn.send(hdr.Xid, &openflow.EchoReply{Data: m.Data})
	case *openflow.EchoReply:
		// lastRx already refreshed.
	case *openflow.FeaturesRequest:
		_ = conn.send(hdr.Xid, s.featuresReply())
	case *openflow.GetConfigRequest:
		_ = conn.send(hdr.Xid, &openflow.GetConfigReply{MissSendLen: s.cfg.MissSendLen})
	case *openflow.SetConfig:
		s.mu.Lock()
		if m.MissSendLen > 0 {
			s.cfg.MissSendLen = m.MissSendLen
		}
		s.mu.Unlock()
	case *openflow.BarrierRequest:
		_ = conn.send(hdr.Xid, &openflow.BarrierReply{})
	case *openflow.FlowMod:
		s.handleFlowMod(conn, hdr, m)
	case *openflow.PacketOut:
		s.handlePacketOut(m)
	case *openflow.PortMod:
		s.handlePortMod(conn, m)
	case *openflow.StatsRequest:
		s.handleStatsRequest(conn, hdr, m)
	case *openflow.Vendor:
		_ = conn.send(hdr.Xid, &openflow.ErrorMsg{
			ErrType: openflow.ErrTypeBadRequest, Code: openflow.ErrCodeBadRequestBadType,
		})
	default:
		// HELLO after handshake, replies, etc.: ignore.
	}
}

// handlePortMod applies OFPPC_PORT_DOWN changes and notifies the
// controller with PORT_STATUS.
func (s *Switch) handlePortMod(conn ctrlChan, pm *openflow.PortMod) {
	if pm.Mask&openflow.PortConfigPortDown == 0 {
		return
	}
	s.mu.Lock()
	p := s.ports[pm.PortNo]
	var desc openflow.PhyPort
	if p != nil {
		p.adminDown = pm.Config&openflow.PortConfigPortDown != 0
		desc = p.phy()
	}
	s.mu.Unlock()
	if p == nil {
		_ = conn.sendAsync(s.nextXid(), &openflow.ErrorMsg{
			ErrType: openflow.ErrTypePortModFailed, Code: 0,
		})
		return
	}
	_ = conn.sendAsync(s.nextXid(), &openflow.PortStatus{
		Reason: openflow.PortStatusModify,
		Desc:   desc,
	})
}

func (s *Switch) featuresReply() *openflow.FeaturesReply {
	s.mu.Lock()
	defer s.mu.Unlock()
	fr := &openflow.FeaturesReply{
		DatapathID:   s.cfg.DPID,
		NBuffers:     uint32(s.cfg.NBuffers),
		NTables:      1,
		Capabilities: openflow.CapabilityFlowStats | openflow.CapabilityTableStats | openflow.CapabilityPortStats,
		Actions:      0x0fff,
	}
	for _, p := range s.ports {
		fr.Ports = append(fr.Ports, p.phy())
	}
	return fr
}

func (s *Switch) handleFlowMod(conn ctrlChan, hdr openflow.Header, fm *openflow.FlowMod) {
	now := s.clk.Now()
	table := s.table
	if fm.Flags&openflow.FlowModFlagEmergency != 0 {
		if !s.cfg.EmergencyFlows {
			_ = conn.send(hdr.Xid, &openflow.ErrorMsg{
				ErrType: openflow.ErrTypeFlowModFailed, Code: openflow.ErrCodeFlowModUnsupported,
			})
			return
		}
		// §4.6: emergency entries must not have timeouts.
		if fm.IdleTimeout != 0 || fm.HardTimeout != 0 {
			_ = conn.send(hdr.Xid, &openflow.ErrorMsg{
				ErrType: openflow.ErrTypeFlowModFailed, Code: openflow.ErrCodeFlowModBadEmergTimeout,
			})
			return
		}
		table = s.emerg
	}
	var err error
	switch fm.Command {
	case openflow.FlowModAdd:
		if err = table.Add(fm, now); err == nil {
			s.ctrs.flowModsInstalled.Inc()
			s.tele.Emit(telemetry.Event{
				Layer: telemetry.LayerSwitch, Kind: telemetry.KindInstall,
				Node: s.cfg.Name, MsgType: "FLOW_MOD", Detail: "add",
			})
		}
	case openflow.FlowModModify:
		if err = table.Modify(fm, false, now); err == nil {
			s.ctrs.flowModsInstalled.Inc()
			s.tele.Emit(telemetry.Event{
				Layer: telemetry.LayerSwitch, Kind: telemetry.KindInstall,
				Node: s.cfg.Name, MsgType: "FLOW_MOD", Detail: "modify",
			})
		}
	case openflow.FlowModModifyStrict:
		if err = table.Modify(fm, true, now); err == nil {
			s.ctrs.flowModsInstalled.Inc()
			s.tele.Emit(telemetry.Event{
				Layer: telemetry.LayerSwitch, Kind: telemetry.KindInstall,
				Node: s.cfg.Name, MsgType: "FLOW_MOD", Detail: "modify_strict",
			})
		}
	case openflow.FlowModDelete, openflow.FlowModDeleteStrict:
		removed := table.Delete(fm, fm.Command == openflow.FlowModDeleteStrict)
		for _, e := range removed {
			s.ctrs.flowModsEvicted.Inc()
			s.tele.Emit(telemetry.Event{
				Layer: telemetry.LayerSwitch, Kind: telemetry.KindEvict,
				Node: s.cfg.Name, Detail: openflow.FlowRemovedDelete.String(),
			})
			s.notifyFlowRemoved(conn, e, openflow.FlowRemovedDelete, now)
		}
	default:
		_ = conn.send(hdr.Xid, &openflow.ErrorMsg{
			ErrType: openflow.ErrTypeFlowModFailed, Code: openflow.ErrCodeFlowModBadCommand,
		})
		return
	}
	if err != nil {
		code := openflow.ErrCodeFlowModAllTablesFull
		if errors.Is(err, ErrOverlap) {
			code = openflow.ErrCodeFlowModOverlap
		}
		_ = conn.send(hdr.Xid, &openflow.ErrorMsg{ErrType: openflow.ErrTypeFlowModFailed, Code: code})
		return
	}
	s.mu.Lock()
	s.stats.FlowModsApplied++
	s.mu.Unlock()

	// Release a buffered packet through the new actions (ADD/MODIFY only).
	if fm.BufferID != openflow.NoBuffer && fm.Command <= openflow.FlowModModifyStrict {
		if pkt, ok := s.bufs.take(fm.BufferID); ok {
			s.applyActions(fm.Actions, pkt.inPort, pkt.frame)
		}
	}
}

func (s *Switch) handlePacketOut(po *openflow.PacketOut) {
	var frame []byte
	inPort := po.InPort
	if po.BufferID != openflow.NoBuffer {
		pkt, ok := s.bufs.take(po.BufferID)
		if !ok {
			return
		}
		frame = pkt.frame
		if inPort == openflow.PortNone {
			inPort = pkt.inPort
		}
	} else {
		frame = po.Data
	}
	if len(frame) == 0 {
		return
	}
	s.mu.Lock()
	s.stats.PacketOutsApplied++
	s.mu.Unlock()
	s.applyActions(po.Actions, inPort, frame)
}

func (s *Switch) handleStatsRequest(conn ctrlChan, hdr openflow.Header, req *openflow.StatsRequest) {
	var body openflow.StatsBody
	switch b := req.Body.(type) {
	case openflow.DescStatsRequest:
		body = &openflow.DescStatsReply{
			MfrDesc: "ATTAIN", HWDesc: "simulated", SWDesc: "switchsim",
			SerialNum: fmt.Sprintf("%d", s.cfg.DPID), DPDesc: s.cfg.Name,
		}
	case *openflow.FlowStatsRequest:
		reply := &openflow.FlowStatsReply{}
		now := s.clk.Now()
		for _, e := range s.table.Snapshot() {
			if !b.Match.Subsumes(e.Match) {
				continue
			}
			dur := now.Sub(e.InstalledAt)
			reply.Flows = append(reply.Flows, openflow.FlowStatsEntry{
				TableID: 0, Match: e.Match,
				DurationSec:  uint32(dur / time.Second),
				DurationNsec: uint32(dur % time.Second),
				Priority:     e.Priority, IdleTimeout: e.IdleTimeout, HardTimeout: e.HardTimeout,
				Cookie: e.Cookie, PacketCount: e.Packets, ByteCount: e.Bytes,
				Actions: e.Actions,
			})
		}
		body = reply
	case *openflow.AggregateStatsRequest:
		packets, bytes, flows := s.table.Aggregate(b.Match)
		body = &openflow.AggregateStatsReply{PacketCount: packets, ByteCount: bytes, FlowCount: flows}
	case openflow.TableStatsRequest:
		lookups, matched := s.table.LookupStats()
		body = &openflow.TableStatsReply{Tables: []openflow.TableStatsEntry{{
			TableID: 0, Name: "classifier", Wildcards: openflow.WildcardAll,
			MaxEntries: uint32(s.cfg.TableSize), ActiveCount: uint32(s.table.Len()),
			LookupCount: lookups, MatchedCount: matched,
		}}}
	case *openflow.PortStatsRequest:
		reply := &openflow.PortStatsReply{}
		s.mu.Lock()
		for _, p := range s.ports {
			if b.PortNo != openflow.PortNone && b.PortNo != p.no {
				continue
			}
			reply.Ports = append(reply.Ports, openflow.PortStatsEntry{PortNo: p.no})
		}
		s.mu.Unlock()
		body = reply
	default:
		_ = conn.send(hdr.Xid, &openflow.ErrorMsg{
			ErrType: openflow.ErrTypeBadRequest, Code: openflow.ErrCodeBadRequestBadStat,
		})
		return
	}
	_ = conn.send(hdr.Xid, &openflow.StatsReply{Body: body})
}

func (s *Switch) notifyFlowRemoved(conn ctrlChan, e *Entry, reason openflow.FlowRemovedReason, now time.Time) {
	if e.Flags&openflow.FlowModFlagSendFlowRem == 0 || conn == nil {
		return
	}
	dur := now.Sub(e.InstalledAt)
	_ = conn.sendAsync(s.nextXid(), &openflow.FlowRemoved{
		Match: e.Match, Cookie: e.Cookie, Priority: e.Priority, Reason: reason,
		DurationSec: uint32(dur / time.Second), DurationNsec: uint32(dur % time.Second),
		IdleTimeout: e.IdleTimeout, PacketCount: e.Packets, ByteCount: e.Bytes,
	})
}

// expiryLoop periodically evicts timed-out flows.
func (s *Switch) expiryLoop() {
	for {
		select {
		case <-s.stop:
			return
		case <-s.clk.After(s.cfg.ExpiryInterval):
			s.mu.Lock()
			conn := s.conn
			s.mu.Unlock()
			s.expireOnce(s.clk.Now(), conn)
		}
	}
}

// expireOnce runs one flow-timeout sweep, notifying the controller over
// conn. Shared by the goroutine expiryLoop and the shard-hosted tick path
// (which passes the hosted connection and its batch timestamp).
func (s *Switch) expireOnce(now time.Time, conn ctrlChan) {
	expired := s.table.Expire(now)
	for _, ex := range expired {
		s.ctrs.flowModsEvicted.Inc()
		s.tele.Emit(telemetry.Event{
			Layer: telemetry.LayerSwitch, Kind: telemetry.KindEvict,
			Node: s.cfg.Name, Detail: ex.Reason.String(),
		})
		s.notifyFlowRemoved(conn, ex.Entry, ex.Reason, now)
	}
}
