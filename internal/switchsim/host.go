package switchsim

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"attain/internal/clock"
	"attain/internal/evloop"
	"attain/internal/openflow"
	"attain/internal/telemetry"
)

// Host runs many switches' control channels on a small set of shared
// event-loop shards instead of goroutines-per-switch. A hosted switch is
// never Start()ed: Admit dials its controller, completes the HELLO
// exchange, and binds the session to a shard chosen by DPID hash; from
// then on one reader goroutine feeds the shard's intake queue and the
// shard loop owns all of the session's timers (echo liveness, flow
// expiry) and its outbound writes (coalesced per batch, like the
// injector's shard core — both ride internal/evloop).
//
// At 5,000 switches this replaces ~5 goroutines per switch (connLoop,
// expiryLoop, writePump, echo prober, handshake reader) with one reader
// per switch plus a fixed number of shard loops.
type Host struct {
	cfg  HostConfig
	clk  clock.Clock
	tele *telemetry.Telemetry

	shards []*hostShard
	stop   chan struct{}
	wg     sync.WaitGroup

	mu       sync.Mutex
	stopping bool
	started  bool

	imbalance *telemetry.Counter
}

// HostConfig parameterizes a Host.
type HostConfig struct {
	// Shards is the number of event-loop shards (default 1).
	Shards int
	// Batch bounds how many events one loop iteration processes between
	// flushes (default 256).
	Batch int
	// QueueLen is the per-shard intake preallocation (default 4096).
	// Hosted intake never blocks producers (readers and cross-loop writes
	// both use non-blocking pushes, so loops can never deadlock on each
	// other's backpressure); the queue-depth gauge tracks overshoot.
	QueueLen int
	// Tick is the shard timer granularity for echo liveness and flow
	// expiry checks (default 100ms). Per-connection deadlines are kept in
	// loop-owned state and checked once per tick, replacing per-switch
	// timer goroutines.
	Tick time.Duration
	// Seed perturbs the DPID→shard placement hash.
	Seed int64
	// Clock supplies time (default real time).
	Clock clock.Clock
	// Telemetry receives per-shard counters (nil disables).
	Telemetry *telemetry.Telemetry
}

func (c *HostConfig) setDefaults() {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Batch <= 0 {
		c.Batch = 256
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 4096
	}
	if c.Tick <= 0 {
		c.Tick = 100 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = clock.New()
	}
}

// Event kinds of the hosted control-channel loop. Events are small values
// (no pooling needed): the queue slices recycle via evloop's swap.
const (
	hevOpen   = uint8(iota + 1) // handshake done, register the session
	hevMsg                      // one decoded controller message
	hevWrite                    // one outbound frame (pooled buffer)
	hevClosed                   // reader saw EOF/error, unregister
	hevTick                     // timer granularity: echo + expiry sweep
)

type hostEvent struct {
	kind uint8
	hc   *hostedConn
	hdr  openflow.Header
	msg  openflow.Message
	buf  []byte
}

// hostShard is one event loop hosting a subset of the switches.
type hostShard struct {
	h  *Host
	id int

	q   *evloop.Queue[hostEvent]
	out *evloop.Coalescer

	// Loop-owned: the live sessions, and those with pending writes this
	// batch.
	conns   map[*hostedConn]struct{}
	touched []*hostedConn

	processed atomic.Uint64
	batchN    uint64

	msgs    *telemetry.Counter
	batches *telemetry.Counter
	batchSz *telemetry.Histogram
}

// hostedConn is the shard-hosted implementation of ctrlChan: sends queue
// pooled frames to the owning shard, which coalesces them into one
// Conn.Write per session per batch.
type hostedConn struct {
	sw     *Switch
	sh     *hostShard
	conn   net.Conn
	closed chan struct{}
	once   sync.Once

	// Loop-owned session state (only the shard loop touches these).
	lastRx     time.Time
	nextEcho   time.Time
	nextExpiry time.Time
	pend       [][]byte
	pendQueued bool
	open       bool
}

func (hc *hostedConn) close() {
	hc.once.Do(func() {
		close(hc.closed)
		_ = hc.conn.Close()
	})
}

// send implements ctrlChan. The hosted path cannot block (writes drain at
// the next batch), so failure means the channel is down.
func (hc *hostedConn) send(xid uint32, msg openflow.Message) error {
	if !hc.sendAsync(xid, msg) {
		return net.ErrClosed
	}
	return nil
}

// sendAsync implements ctrlChan: marshal into a pooled buffer and hand it
// to the owning shard. Safe from any goroutine, including other shard
// loops — the push never blocks, so loops cannot deadlock on each other.
func (hc *hostedConn) sendAsync(xid uint32, msg openflow.Message) bool {
	select {
	case <-hc.closed:
		return false
	default:
	}
	buf, err := openflow.AppendMessage(openflow.GetBuffer(), xid, msg)
	if err != nil {
		openflow.PutBuffer(buf)
		return false
	}
	if !hc.sh.q.PushNoWait(hostEvent{kind: hevWrite, hc: hc, buf: buf}) {
		openflow.PutBuffer(buf)
		return false
	}
	return true
}

// NewHost builds a host; Start launches its shard loops.
func NewHost(cfg HostConfig) *Host {
	cfg.setDefaults()
	h := &Host{
		cfg:       cfg,
		clk:       cfg.Clock,
		tele:      cfg.Telemetry,
		stop:      make(chan struct{}),
		imbalance: cfg.Telemetry.Counter("switchsim.host.imbalance"),
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &hostShard{
			h:  h,
			id: i,
			q: evloop.NewQueue[hostEvent](evloop.Config{
				Capacity: cfg.QueueLen,
				Depth:    cfg.Telemetry.Gauge(fmt.Sprintf("switchsim.host.shard.%d.queue_depth", i)),
			}),
			out:     evloop.NewCoalescer(0),
			conns:   make(map[*hostedConn]struct{}),
			msgs:    cfg.Telemetry.Counter(fmt.Sprintf("switchsim.host.shard.%d.msgs", i)),
			batches: cfg.Telemetry.Counter(fmt.Sprintf("switchsim.host.shard.%d.batches", i)),
			batchSz: cfg.Telemetry.Histogram(fmt.Sprintf("switchsim.host.shard.%d.batch_size", i)),
		}
		h.shards = append(h.shards, sh)
	}
	return h
}

// Shards reports the configured shard count.
func (h *Host) Shards() int { return len(h.shards) }

// Start launches the shard loops and their tick sources.
func (h *Host) Start() {
	h.mu.Lock()
	if h.started || h.stopping {
		h.mu.Unlock()
		return
	}
	h.started = true
	h.mu.Unlock()
	for _, sh := range h.shards {
		sh := sh
		h.goTracked(sh.run)
		h.goTracked(sh.tickLoop)
	}
}

// Stop shuts every hosted session and shard loop down and waits for them.
func (h *Host) Stop() {
	h.mu.Lock()
	if h.stopping {
		h.mu.Unlock()
		h.wg.Wait()
		return
	}
	h.stopping = true
	h.mu.Unlock()
	close(h.stop)
	h.wg.Wait()
}

// goTracked runs fn on a wg-tracked goroutine unless the host is
// stopping; the stopping check and wg.Add happen under one lock so Stop's
// wg.Wait can never race a late Add.
func (h *Host) goTracked(fn func()) bool {
	h.mu.Lock()
	if h.stopping {
		h.mu.Unlock()
		return false
	}
	h.wg.Add(1)
	h.mu.Unlock()
	go func() {
		defer h.wg.Done()
		fn()
	}()
	return true
}

// shardFor maps a DPID to its owning shard (splitmix64 over DPID and the
// placement seed — deterministic for a given config, like the injector's
// session placement).
func (h *Host) shardFor(dpid uint64) *hostShard {
	z := dpid + (uint64(h.cfg.Seed)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return h.shards[z%uint64(len(h.shards))]
}

// Admit dials sw's controller, performs the HELLO exchange, and binds the
// session to its shard. It blocks until the handshake completes (bounded
// by the switch's HandshakeTimeout), so callers admitting in waves get
// bounded outstanding handshakes for free. Dial and handshake failures
// are reported through sw's OnConnError hook as well as the return value.
func (h *Host) Admit(sw *Switch) error {
	sh := h.shardFor(sw.cfg.DPID)
	raw, err := sw.cfg.Transport.Dial(sw.cfg.ControllerAddr)
	if err != nil {
		err = fmt.Errorf("dial controller: %w", err)
		if sw.cfg.OnConnError != nil {
			sw.cfg.OnConnError(err)
		}
		return err
	}
	hc := &hostedConn{sw: sw, sh: sh, conn: raw, closed: make(chan struct{})}

	// HELLO goes out synchronously; the reader goroutine waits for the
	// peer's HELLO and then hands the session to the shard loop.
	buf, err := openflow.AppendMessage(openflow.GetBuffer(), sw.nextXid(), &openflow.Hello{})
	if err != nil {
		openflow.PutBuffer(buf)
		hc.close()
		return err
	}
	_, werr := raw.Write(buf)
	openflow.PutBuffer(buf)
	if werr != nil {
		hc.close()
		werr = fmt.Errorf("handshake: %w", werr)
		if sw.cfg.OnConnError != nil {
			sw.cfg.OnConnError(werr)
		}
		return werr
	}

	hsDone := make(chan error, 1)
	if !h.goTracked(func() { h.readLoop(hc, hsDone) }) {
		hc.close()
		return net.ErrClosed
	}
	select {
	case err := <-hsDone:
		if err != nil {
			hc.close()
			err = fmt.Errorf("handshake: %w", err)
			if sw.cfg.OnConnError != nil {
				sw.cfg.OnConnError(err)
			}
			return err
		}
		return nil
	case <-h.clk.After(sw.cfg.HandshakeTimeout):
		hc.close()
		err := errors.New("handshake: timed out waiting for HELLO")
		if sw.cfg.OnConnError != nil {
			sw.cfg.OnConnError(err)
		}
		return err
	case <-h.stop:
		hc.close()
		return net.ErrClosed
	}
}

// readLoop is the one goroutine a hosted session keeps: it completes the
// handshake, then decodes messages into shard events. Decoded messages do
// not alias the reader's pooled buffer, so handing them to the loop is
// safe. hevOpen is pushed before hsDone resolves and before any hevMsg,
// so the loop always registers the session before its first message.
func (h *Host) readLoop(hc *hostedConn, hsDone chan<- error) {
	mr := openflow.NewMessageReader(hc.conn)
	defer mr.Close()

	_, msg, err := mr.Read()
	switch {
	case err != nil:
		hsDone <- err
		hc.close()
		return
	case msg.Type() != openflow.TypeHello:
		hsDone <- fmt.Errorf("expected HELLO, got %s", msg.Type())
		hc.close()
		return
	case !hc.sh.q.PushNoWait(hostEvent{kind: hevOpen, hc: hc}):
		hsDone <- net.ErrClosed
		hc.close()
		return
	}
	hsDone <- nil

	for {
		hdr, msg, err := mr.Read()
		if err != nil {
			hc.sh.q.PushNoWait(hostEvent{kind: hevClosed, hc: hc})
			hc.close()
			return
		}
		hc.sh.q.PushNoWait(hostEvent{kind: hevMsg, hc: hc, hdr: hdr, msg: msg})
	}
}

// RetryLater schedules a background re-admission of sw: redial after its
// ReconnectInterval, retrying until Admit succeeds or the host stops.
// Bring-up code uses this to retry transiently failed admissions without
// stalling its wave.
func (h *Host) RetryLater(sw *Switch) { h.reconnectLater(sw) }

// reconnectLater redials sw after its ReconnectInterval, retrying until
// Admit succeeds or the host stops — the hosted analogue of connLoop's
// redial path.
func (h *Host) reconnectLater(sw *Switch) {
	h.goTracked(func() {
		for {
			select {
			case <-h.stop:
				return
			case <-h.clk.After(sw.cfg.ReconnectInterval):
			}
			sw.mu.Lock()
			sw.stats.Reconnects++
			sw.mu.Unlock()
			sw.ctrs.reconnects.Inc()
			if err := h.Admit(sw); err == nil {
				return
			}
			select {
			case <-h.stop:
				return
			default:
			}
		}
	})
}

// run is the shard loop: drain the intake in swap batches until the host
// stops, then tear down.
func (sh *hostShard) run() {
	defer sh.shutdown()
	for {
		batch := sh.q.Drain(sh.h.stop)
		if batch == nil {
			return
		}
		sh.drainBatch(batch)
	}
}

// tickLoop feeds the loop its timer granularity. One timer per shard
// replaces per-switch echo-prober and expiry goroutines; per-connection
// deadlines are loop-owned and checked against the batch timestamp.
func (sh *hostShard) tickLoop() {
	for {
		select {
		case <-sh.h.stop:
			return
		case <-sh.h.clk.After(sh.h.cfg.Tick):
			sh.q.PushQuiet(hostEvent{kind: hevTick})
		}
	}
}

// drainBatch processes one queue swap in Batch-sized chunks with a single
// clock read per chunk, then flushes every touched session's writes with
// one coalesced Conn.Write each.
func (sh *hostShard) drainBatch(events []hostEvent) {
	max := sh.h.cfg.Batch
	for len(events) > 0 {
		n := len(events)
		if n > max {
			n = max
		}
		chunk := events[:n]
		events = events[n:]
		now := sh.h.clk.Now()
		msgs := 0
		for i := range chunk {
			ev := &chunk[i]
			switch ev.kind {
			case hevOpen:
				sh.openConn(ev.hc, now)
			case hevMsg:
				ev.hc.lastRx = now
				ev.hc.sw.handleControl(ev.hc, ev.hdr, ev.msg)
				msgs++
			case hevWrite:
				sh.queueWrite(ev.hc, ev.buf)
			case hevClosed:
				sh.dropConn(ev.hc)
			case hevTick:
				sh.tick(now)
			}
			*ev = hostEvent{}
		}
		sh.flushAll()
		sh.batchSz.Observe(int64(n))
		sh.batches.Inc()
		if msgs > 0 {
			sh.msgs.Add(uint64(msgs))
			sh.processed.Add(uint64(msgs))
		}
		sh.batchN++
		if sh.batchN%64 == 0 && len(sh.h.shards) > 1 {
			sh.observeImbalance()
		}
	}
}

func (sh *hostShard) openConn(hc *hostedConn, now time.Time) {
	sw := hc.sw
	hc.open = true
	hc.lastRx = now
	hc.nextEcho = now.Add(sw.cfg.EchoInterval)
	hc.nextExpiry = now.Add(sw.cfg.ExpiryInterval)
	sh.conns[hc] = struct{}{}
	sw.setConnected(true, hc)
}

// dropConn unregisters a dead session and schedules its redial. The
// reader pushes hevClosed exactly once and always after hevOpen, and a
// reconnect's new hevOpen lands on the same shard (DPID placement) after
// this event, so open/close interleavings stay ordered.
func (sh *hostShard) dropConn(hc *hostedConn) {
	if !hc.open {
		return
	}
	hc.open = false
	delete(sh.conns, hc)
	for _, fr := range hc.pend {
		openflow.PutBuffer(fr)
	}
	hc.pend = hc.pend[:0]
	hc.pendQueued = false
	hc.sw.setConnected(false, nil)
	sh.h.reconnectLater(hc.sw)
}

// queueWrite appends an outbound frame to its session's pending list for
// the batch-end flush; frames for a closed session are recycled.
func (sh *hostShard) queueWrite(hc *hostedConn, buf []byte) {
	select {
	case <-hc.closed:
		openflow.PutBuffer(buf)
		return
	default:
	}
	hc.pend = append(hc.pend, buf)
	if !hc.pendQueued {
		hc.pendQueued = true
		sh.touched = append(sh.touched, hc)
	}
}

// tick runs the per-connection timer checks against the batch timestamp:
// echo-timeout liveness (close and let the reader deliver hevClosed),
// echo probing, and flow-expiry sweeps.
func (sh *hostShard) tick(now time.Time) {
	for hc := range sh.conns {
		sw := hc.sw
		if now.Sub(hc.lastRx) > sw.cfg.EchoTimeout {
			hc.close()
			continue
		}
		if !now.Before(hc.nextEcho) {
			hc.sendAsync(sw.nextXid(), &openflow.EchoRequest{Data: []byte(sw.cfg.Name)})
			hc.nextEcho = now.Add(sw.cfg.EchoInterval)
		}
		if !now.Before(hc.nextExpiry) {
			sw.expireOnce(now, hc)
			hc.nextExpiry = now.Add(sw.cfg.ExpiryInterval)
		}
	}
}

// flushAll writes every touched session's pending frames with one
// coalesced write; a write error tears the session down (the reader then
// delivers hevClosed).
func (sh *hostShard) flushAll() {
	for i, hc := range sh.touched {
		if len(hc.pend) > 0 {
			if _, err := sh.out.Flush(hc.conn, hc.pend, openflow.PutBuffer); err != nil {
				hc.close()
			}
			hc.pend = hc.pend[:0]
		}
		hc.pendQueued = false
		sh.touched[i] = nil
	}
	sh.touched = sh.touched[:0]
}

// shutdown tears the shard down after the loop exits: recycle queued
// writes, then close every hosted session and recycle its pending frames.
func (sh *hostShard) shutdown() {
	for _, ev := range sh.q.Close() {
		if ev.kind == hevWrite {
			openflow.PutBuffer(ev.buf)
		}
	}
	for hc := range sh.conns {
		hc.close()
		for _, fr := range hc.pend {
			openflow.PutBuffer(fr)
		}
		hc.pend = nil
		hc.pendQueued = false
		hc.open = false
		delete(sh.conns, hc)
	}
	sh.touched = sh.touched[:0]
}

// observeImbalance mirrors the injector's shard-imbalance probe: bump the
// host-wide counter when the busiest shard has processed more than twice
// the idlest (plus one batch of slack).
func (sh *hostShard) observeImbalance() {
	min, max := ^uint64(0), uint64(0)
	for _, other := range sh.h.shards {
		p := other.processed.Load()
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	if max > 2*min+uint64(sh.h.cfg.Batch) {
		sh.h.imbalance.Inc()
	}
}
