package switchsim

import (
	"errors"
	"testing"
	"time"

	"attain/internal/netaddr"
	"attain/internal/openflow"
)

// FuzzTableLookupDifferential drives Table with a fuzz-decoded sequence of
// FLOW_MOD adds and deletes and cross-checks every observable against a
// naive reference model. The reference keeps entries in plain insertion
// order and picks a lookup winner by scanning for the maximum priority
// (first-inserted wins ties), so it exercises none of Table's
// sorted-insertion bookkeeping — if Table's ordering, replacement, or
// deletion logic drifts from OpenFlow 1.0 semantics, the two disagree.
//
// Field values are drawn from a tiny universe (four MACs, four IPs, a
// handful of ports and priorities) so that adds collide, wildcards overlap,
// and lookups actually hit.
func FuzzTableLookupDifferential(f *testing.F) {
	for _, seed := range fuzzTableSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c := &fuzzCursor{data: data}
		tbl := NewTable(0)
		ref := &refTable{}
		now := time.Unix(0, 0)
		var cookie uint64

		for i := 0; i < 64 && !c.done(); i++ {
			op := c.byte() % 4
			switch op {
			case 0, 1: // ADD, op 1 with CHECK_OVERLAP
				cookie++
				fm := &openflow.FlowMod{
					Match:    decodeFuzzMatch(c),
					Command:  openflow.FlowModAdd,
					Priority: uint16(c.byte() & 7),
					Cookie:   cookie,
					BufferID: openflow.NoBuffer,
					OutPort:  openflow.PortNone,
					Actions:  []openflow.Action{openflow.ActionOutput{Port: uint16(c.byte()&3) + 1}},
				}
				if op == 1 {
					fm.Flags = openflow.FlowModFlagCheckOverlap
				}
				gotErr := tbl.Add(fm, now)
				wantErr := ref.add(fm)
				if !errors.Is(gotErr, wantErr) && !errors.Is(wantErr, gotErr) {
					t.Fatalf("op %d: Add err = %v, reference err = %v", i, gotErr, wantErr)
				}
			case 2, 3: // DELETE, op 3 strict
				fm := &openflow.FlowMod{
					Match:    decodeFuzzMatch(c),
					Command:  openflow.FlowModDelete,
					Priority: uint16(c.byte() & 7),
					OutPort:  openflow.PortNone,
				}
				if sel := c.byte(); sel != 0 {
					fm.OutPort = uint16(sel&3) + 1
				}
				strict := op == 3
				got := cookieSet(tbl.Delete(fm, strict))
				want := ref.delete(fm, strict)
				if len(got) != len(want) {
					t.Fatalf("op %d: Delete(strict=%v) removed %d entries, reference removed %d",
						i, strict, len(got), len(want))
				}
				for ck := range want {
					if !got[ck] {
						t.Fatalf("op %d: Delete(strict=%v) kept cookie %d, reference removed it",
							i, strict, ck)
					}
				}
			}
			if tbl.Len() != len(ref.entries) {
				t.Fatalf("op %d: table has %d entries, reference has %d", i, tbl.Len(), len(ref.entries))
			}
		}

		// Probe with the canonical packet plus a few fuzz-derived ones.
		packets := []openflow.FieldView{tcpFields()}
		for i := 0; i < 4 && !c.done(); i++ {
			packets = append(packets, decodeFuzzFields(c))
		}
		for _, p := range packets {
			got := tbl.Lookup(p, 1, now)
			want, ok := ref.lookup(p)
			if (got != nil) != ok {
				t.Fatalf("Lookup(%+v): table hit=%v, reference hit=%v", p, got != nil, ok)
			}
			if got != nil && got.Cookie != want.cookie {
				t.Fatalf("Lookup(%+v): table chose cookie %d (priority %d), reference chose cookie %d (priority %d)",
					p, got.Cookie, got.Priority, want.cookie, want.priority)
			}
		}
	})
}

// refTable is the naive reference: entries in bare insertion order, linear
// max-priority scan for lookups.
type refTable struct {
	entries []refEntry
}

type refEntry struct {
	match    openflow.Match
	priority uint16
	cookie   uint64
	outPort  uint16
}

func (r *refTable) add(fm *openflow.FlowMod) error {
	if fm.Flags&openflow.FlowModFlagCheckOverlap != 0 {
		for _, e := range r.entries {
			if e.priority == fm.Priority && e.match.Overlaps(fm.Match) {
				return ErrOverlap
			}
		}
	}
	ne := refEntry{
		match:    fm.Match,
		priority: fm.Priority,
		cookie:   fm.Cookie,
		outPort:  fm.Actions[0].(openflow.ActionOutput).Port,
	}
	for i, e := range r.entries {
		if e.priority == fm.Priority && e.match.EqualStrict(fm.Match) {
			r.entries[i] = ne
			return nil
		}
	}
	r.entries = append(r.entries, ne)
	return nil
}

func (r *refTable) delete(fm *openflow.FlowMod, strict bool) map[uint64]bool {
	removed := make(map[uint64]bool)
	kept := r.entries[:0]
	for _, e := range r.entries {
		match := false
		if strict {
			match = e.priority == fm.Priority && fm.Match.EqualStrict(e.match)
		} else {
			match = fm.Match.Subsumes(e.match)
		}
		if match && (fm.OutPort == openflow.PortNone || e.outPort == fm.OutPort) {
			removed[e.cookie] = true
			continue
		}
		kept = append(kept, e)
	}
	r.entries = kept
	return removed
}

// lookup scans all entries for the highest priority match; the earliest
// inserted wins ties, mirroring OpenFlow's stable-priority ordering.
func (r *refTable) lookup(f openflow.FieldView) (refEntry, bool) {
	best := -1
	for i, e := range r.entries {
		if e.match.Matches(f) && (best < 0 || e.priority > r.entries[best].priority) {
			best = i
		}
	}
	if best < 0 {
		return refEntry{}, false
	}
	return r.entries[best], true
}

func cookieSet(entries []*Entry) map[uint64]bool {
	set := make(map[uint64]bool, len(entries))
	for _, e := range entries {
		set[e.Cookie] = true
	}
	return set
}

// fuzzCursor consumes fuzz input one byte at a time, yielding zeros once
// exhausted so every prefix decodes deterministically.
type fuzzCursor struct {
	data []byte
	pos  int
}

func (c *fuzzCursor) byte() byte {
	if c.pos >= len(c.data) {
		return 0
	}
	b := c.data[c.pos]
	c.pos++
	return b
}

func (c *fuzzCursor) done() bool { return c.pos >= len(c.data) }

var (
	fuzzMACs = [4]netaddr.MAC{
		netaddr.MustParseMAC("0a:00:00:00:00:01"),
		netaddr.MustParseMAC("0a:00:00:00:00:02"),
		netaddr.MustParseMAC("0a:00:00:00:00:03"),
		netaddr.MustParseMAC("0a:00:00:00:00:04"),
	}
	fuzzIPs = [4]netaddr.IPv4{
		netaddr.MustParseIPv4("10.0.0.1"),
		netaddr.MustParseIPv4("10.0.0.2"),
		netaddr.MustParseIPv4("10.0.1.1"),
		netaddr.MustParseIPv4("192.168.0.1"),
	}
	fuzzProtos = [3]uint8{1, 6, 17}
	fuzzTPs    = [4]uint16{80, 443, 1000, 5001}
	// fuzzMaskBits maps the 2-bit prefix selector to significant nw_src /
	// nw_dst bits; index 0 keeps the default exact match.
	fuzzMaskBits = [4]int{32, 24, 8, 0}
)

// decodeFuzzFields consumes 9 bytes and produces a packet view from the
// small field universe.
func decodeFuzzFields(c *fuzzCursor) openflow.FieldView {
	f := openflow.FieldView{
		InPort:  uint16(c.byte()&3) + 1,
		DLSrc:   fuzzMACs[c.byte()&3],
		DLDst:   fuzzMACs[c.byte()&3],
		DLType:  0x0800,
		NWProto: fuzzProtos[int(c.byte())%len(fuzzProtos)],
		NWSrc:   fuzzIPs[c.byte()&3],
		NWDst:   fuzzIPs[c.byte()&3],
		TPSrc:   fuzzTPs[c.byte()&3],
		TPDst:   fuzzTPs[c.byte()&3],
	}
	flags := c.byte()
	if flags&1 != 0 {
		f.DLType = 0x0806
	}
	if flags&2 != 0 {
		f.DLVLAN = 10
	}
	if flags&4 != 0 {
		f.DLVLANPCP = 3
	}
	if flags&8 != 0 {
		f.NWTOS = 0x10
	}
	return f
}

// decodeFuzzMatch consumes 11 bytes: a field view plus a 14-bit wildcard
// selector (10 per-field bits, two 2-bit prefix-length selectors).
func decodeFuzzMatch(c *fuzzCursor) openflow.Match {
	m := openflow.ExactFrom(decodeFuzzFields(c))
	w := uint16(c.byte()) | uint16(c.byte())<<8
	flags := [...]uint32{
		openflow.WildcardInPort, openflow.WildcardDLSrc, openflow.WildcardDLDst,
		openflow.WildcardDLVLAN, openflow.WildcardDLVLANPCP, openflow.WildcardDLType,
		openflow.WildcardNWTOS, openflow.WildcardNWProto,
		openflow.WildcardTPSrc, openflow.WildcardTPDst,
	}
	for i, flag := range flags {
		if w&(1<<i) != 0 {
			m.Wildcards |= flag
		}
	}
	m.SetNWSrcMaskBits(fuzzMaskBits[(w>>10)&3])
	m.SetNWDstMaskBits(fuzzMaskBits[(w>>12)&3])
	return m
}

// Seed helpers encode ops in the fuzz wire format above.

// seedFields is the canonical tcpFields() packet in fuzz encoding: in_port
// 1, macA→macB, TCP 10.0.0.1:1000→10.0.0.2:80.
var seedFields = []byte{0, 0, 1, 1, 0, 1, 2, 0, 0}

// matchAllWild wildcards all ten fields and both address prefixes.
const matchAllWild uint16 = 0x03ff | 3<<10 | 3<<12

func seedAdd(fields []byte, wild uint16, priority, outPort byte, overlap bool) []byte {
	op := byte(0)
	if overlap {
		op = 1
	}
	out := append([]byte{op}, fields...)
	return append(out, byte(wild), byte(wild>>8), priority, outPort)
}

func seedDelete(fields []byte, wild uint16, priority, outPortSel byte, strict bool) []byte {
	op := byte(2)
	if strict {
		op = 3
	}
	out := append([]byte{op}, fields...)
	return append(out, byte(wild), byte(wild>>8), priority, outPortSel)
}

// fuzzTableSeeds replays the table_test scenarios through the fuzz
// encoding: exact add+lookup, priority ordering over a catch-all,
// replace-identical, CHECK_OVERLAP, and the out_port delete filter.
func fuzzTableSeeds() [][]byte {
	cat := func(chunks ...[]byte) []byte {
		var out []byte
		for _, ch := range chunks {
			out = append(out, ch...)
		}
		return out
	}
	altFields := []byte{0, 0, 1, 1, 0, 1, 2, 1, 0} // tp_dst 443 variant
	return [][]byte{
		// TestTableAddAndLookup: one exact entry, probe with the packet.
		cat(seedAdd(seedFields, 0, 1, 2, false), seedFields),
		// TestTablePriorityOrder: low-priority catch-all vs exact pri 7.
		cat(seedAdd(seedFields, matchAllWild, 1, 1, false),
			seedAdd(seedFields, 0, 7, 2, false), seedFields),
		// TestTableAddReplacesIdentical: same match+priority twice.
		cat(seedAdd(seedFields, 0, 5, 2, false),
			seedAdd(seedFields, 0, 5, 3, false), seedFields),
		// TestTableCheckOverlap: catch-all then overlap-checked exact add.
		cat(seedAdd(seedFields, matchAllWild, 5, 1, false),
			seedAdd(seedFields, 0, 5, 2, true)),
		// TestTableDeleteOutPortFilter: two exact entries, wildcard delete
		// filtered to out_port 3 (selector 2 → port 3).
		cat(seedAdd(seedFields, 0, 1, 1, false),
			seedAdd(altFields, 0, 1, 2, false),
			seedDelete(seedFields, matchAllWild, 0, 2, false), seedFields),
		// TestTableDeleteStrictRequiresExact: strict delete with wildcard
		// match must not remove the exact entry.
		cat(seedAdd(seedFields, 0, 7, 1, false),
			seedDelete(seedFields, matchAllWild, 7, 0, true), seedFields),
	}
}
