package switchsim

import (
	"fmt"
	"testing"
	"time"

	"attain/internal/netaddr"
	"attain/internal/openflow"
)

// fillTable installs n distinct exact-match flows.
func fillTable(b *testing.B, tbl *Table, n int) {
	b.Helper()
	now := time.Unix(0, 0)
	for i := 0; i < n; i++ {
		f := tcpFields()
		f.TPSrc = uint16(i)
		f.NWSrc = netaddr.IPv4{10, 0, byte(i >> 8), byte(i)}
		if err := tbl.Add(addFM(openflow.ExactFrom(f), 1, 2), now); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableLookupHit(b *testing.B) {
	for _, n := range []int{1, 100, 10000} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			tbl := NewTable(0)
			fillTable(b, tbl, n)
			// Look up the last-installed flow (worst case for the linear
			// scan at equal priority).
			f := tcpFields()
			f.TPSrc = uint16(n - 1)
			f.NWSrc = netaddr.IPv4{10, 0, byte((n - 1) >> 8), byte(n - 1)}
			now := time.Unix(1, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if tbl.Lookup(f, 64, now) == nil {
					b.Fatal("miss")
				}
			}
		})
	}
}

func BenchmarkTableLookupMiss(b *testing.B) {
	tbl := NewTable(0)
	fillTable(b, tbl, 1000)
	f := tcpFields()
	f.TPDst = 9999 // matches nothing
	now := time.Unix(1, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl.Lookup(f, 64, now) != nil {
			b.Fatal("unexpected hit")
		}
	}
}

func BenchmarkTableAdd(b *testing.B) {
	now := time.Unix(0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := NewTable(0)
		for j := 0; j < 100; j++ {
			f := tcpFields()
			f.TPSrc = uint16(j)
			if err := tbl.Add(addFM(openflow.ExactFrom(f), uint16(j%8), 2), now); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTableExpireSweep(b *testing.B) {
	now := time.Unix(0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tbl := NewTable(0)
		for j := 0; j < 1000; j++ {
			f := tcpFields()
			f.TPSrc = uint16(j)
			fm := addFM(openflow.ExactFrom(f), 1, 2)
			fm.IdleTimeout = 5
			if err := tbl.Add(fm, now); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if got := tbl.Expire(now.Add(10 * time.Second)); len(got) != 1000 {
			b.Fatalf("expired %d", len(got))
		}
	}
}
