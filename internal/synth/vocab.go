// Package synth generates seeded, reproducible, well-typed ATTAIN attack
// programs. A Generator is a pure function of (base seed, program index):
// the same pair always yields the byte-identical DSL text, regardless of
// which worker or process asks, so grid shards can regenerate their slice
// of a campaign independently (ROADMAP item 3).
//
// The generator draws its property and action vocabulary from the language
// package's own introspection accessors (lang.Properties, lang.PropertyKindOf,
// lang.ActionPrototypes) rather than a parallel hand-maintained list — a new
// action or property shows up here as a loud generator error, not a silent
// coverage gap. Programs are emitted as text DSL via compile.FormatAttack so
// every one flows through the real parser → compiler → injector path.
package synth

import (
	"sort"
	"strings"

	"attain/internal/core/model"
	"attain/internal/openflow"
)

// Vocabulary is the pool of names a generator draws from: the system under
// attack, its control-plane connections, message templates the injector can
// materialize, and literal strings that make comparisons meaningful.
type Vocabulary struct {
	// System is the system model generated programs are validated against.
	System *model.System
	// Conns are the control-plane connections rules may watch.
	Conns []model.Conn
	// Templates are injectable message template names (inject actions are
	// excluded from the action table when empty).
	Templates []string
	// Hosts are host node IDs usable as syscmd targets (syscmd is excluded
	// from the action table when empty).
	Hosts []string
	// StringPool holds literal strings for comparisons and set membership:
	// message type names, component IDs, directions.
	StringPool []string
	// Deques are the attack-local deque names programs manipulate.
	Deques []string
}

// SystemVocabulary derives a Vocabulary from a system model. The string
// pool combines the OpenFlow message-type vocabulary with the system's
// component IDs and the two direction names; extraTemplates (typically
// inject.TemplateNames() plus scenario-specific templates) become the
// injectable template pool.
func SystemVocabulary(sys *model.System, extraTemplates ...string) Vocabulary {
	v := Vocabulary{System: sys}
	v.Conns = append(v.Conns, sys.ControlPlane...)
	for _, h := range sys.Hosts {
		v.Hosts = append(v.Hosts, string(h.ID))
	}
	pool := MessageTypeNames()
	for _, sw := range sys.Switches {
		pool = append(pool, string(sw.ID))
	}
	for _, c := range sys.Controllers {
		pool = append(pool, string(c.ID))
	}
	pool = append(pool, "s2c", "c2s")
	v.StringPool = pool
	seen := make(map[string]bool, len(extraTemplates))
	for _, t := range extraTemplates {
		if t != "" && !seen[t] {
			seen[t] = true
			v.Templates = append(v.Templates, t)
		}
	}
	sort.Strings(v.Templates)
	v.Deques = []string{"d1", "d2", "counter"}
	return v
}

// Attacker returns the full attacker model for the vocabulary's
// connections: every capability granted on every conn, so any well-typed
// rule the generator emits validates (the campaign layer uses the same
// model when running generated programs).
func (v Vocabulary) Attacker() *model.AttackerModel {
	am := model.NewAttackerModel()
	for _, c := range v.Conns {
		am.Grant(c, model.AllCapabilities)
	}
	return am
}

// MessageTypeNames introspects the OpenFlow message-type vocabulary: every
// type whose String() form is a spec name (not the UNKNOWN_TYPE fallback),
// in type-code order. Like lang.ActionPrototypes, this derives the pool
// from the protocol package itself so it cannot drift.
func MessageTypeNames() []string {
	var names []string
	for t := 0; t < 256; t++ {
		s := openflow.Type(t).String()
		if !strings.HasPrefix(s, "UNKNOWN_TYPE") {
			names = append(names, s)
		}
	}
	return names
}
