package synth_test

import (
	"fmt"
	"strings"
	"testing"

	"attain/internal/core/compile"
	"attain/internal/core/lang"
	"attain/internal/synth"
	"attain/internal/topo"
)

func testVocab(t testing.TB) synth.Vocabulary {
	t.Helper()
	g, err := topo.Parse("linear:3x1", 1)
	if err != nil {
		t.Fatalf("topo.Parse: %v", err)
	}
	return synth.SystemVocabulary(g.System(), "pktin_flood", "echo_request", "lldp_phantom")
}

func testGen(t testing.TB, seed int64) *synth.Generator {
	t.Helper()
	g, err := synth.New(synth.Config{Seed: seed, Vocab: testVocab(t)})
	if err != nil {
		t.Fatalf("synth.New: %v", err)
	}
	return g
}

func TestDeterminismAcrossGenerators(t *testing.T) {
	a := testGen(t, 42)
	b := testGen(t, 42)
	for i := 0; i < 50; i++ {
		pa, err := a.Program(i)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		pb, err := b.Program(i)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		if pa.DSL != pb.DSL {
			t.Fatalf("program %d differs across generators with the same seed:\n%s\n----\n%s", i, pa.DSL, pb.DSL)
		}
		if pa.Seed != synth.ProgramSeed(42, i) {
			t.Fatalf("program %d seed %d, want ProgramSeed derivation %d", i, pa.Seed, synth.ProgramSeed(42, i))
		}
	}
	c := testGen(t, 43)
	same := 0
	for i := 0; i < 20; i++ {
		pa, _ := a.Program(i)
		pc, err := c.Program(i)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		if pa.DSL == pc.DSL {
			same++
		}
	}
	if same == 20 {
		t.Fatal("different base seeds produced identical program streams")
	}
}

// Grid shards regenerate only their slice of the index space, in whatever
// order the scheduler hands out leases. Program must be a pure function of
// (seed, index) — no dependence on call order or which indices were asked
// for before.
func TestShardEquivalence(t *testing.T) {
	full := testGen(t, 7)
	want := make(map[int]string)
	for i := 0; i < 40; i++ {
		p, err := full.Program(i)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		want[i] = p.DSL
	}
	shard := testGen(t, 7)
	for i := 39; i >= 1; i -= 2 {
		p, err := shard.Program(i)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		if p.DSL != want[i] {
			t.Fatalf("program %d differs when generated out of order", i)
		}
	}
}

func TestProgramSeedGolden(t *testing.T) {
	// Frozen derivation: changing ProgramSeed silently would re-shuffle
	// every recorded campaign. If this fails, you changed reproducibility.
	if got := synth.ProgramSeed(42, 0); got != synth.ProgramSeed(42, 0) {
		t.Fatal("ProgramSeed not stable within a process")
	}
	if synth.ProgramSeed(42, 0) == synth.ProgramSeed(42, 1) {
		t.Fatal("adjacent indices share a seed")
	}
	if synth.ProgramSeed(42, 0) == synth.ProgramSeed(43, 0) {
		t.Fatal("different bases share a seed")
	}
	if synth.ProgramSeed(0, 0) == 0 {
		t.Fatal("zero seed must be remapped (rand.NewSource(0) degeneracy)")
	}
}

func TestProgramsUniqueAndValid(t *testing.T) {
	g := testGen(t, 42)
	n := 1000
	if testing.Short() {
		n = 200
	}
	seen := make(map[string]int, n)
	bodies := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		p, err := g.Program(i)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		if prev, dup := seen[p.DSL]; dup {
			t.Fatalf("program %d duplicates program %d", i, prev)
		}
		seen[p.DSL] = i
		// Body uniqueness (name line stripped): uniqueness must not hinge
		// on the synth-%06d label alone.
		if _, nl, ok := strings.Cut(p.DSL, "\n"); ok {
			bodies[nl] = true
		}
	}
	if len(bodies) < n*95/100 {
		t.Fatalf("only %d/%d distinct program bodies — generator entropy collapsed", len(bodies), n)
	}
}

// Every generated program must round-trip the text front end
// byte-identically: Format → Parse → Format is the identity on canonical
// text. This is the satellite-1 property on the synth side; the compile
// package's differential tests hold the XML leg.
func TestRoundTripByteIdentical(t *testing.T) {
	vocab := testVocab(t)
	g := testGen(t, 11)
	n := 300
	if testing.Short() {
		n = 50
	}
	for i := 0; i < n; i++ {
		p, err := g.Program(i)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		back, err := compile.ParseAttack(p.DSL, vocab.System)
		if err != nil {
			t.Fatalf("program %d does not parse: %v\n%s", i, err, p.DSL)
		}
		if got := compile.FormatAttack(back); got != p.DSL {
			t.Fatalf("program %d round-trip not byte-identical:\n--- generated ---\n%s\n--- reformatted ---\n%s", i, p.DSL, got)
		}
		if back.Describe() != p.Attack.Describe() {
			t.Fatalf("program %d parsed to a structurally different attack", i)
		}
		if err := back.Validate(vocab.System, g.Attacker()); err != nil {
			t.Fatalf("program %d invalid after reparse: %v", i, err)
		}
	}
}

// The generator must reach the full action and expression vocabulary: a
// language construct no program can contain is a construct generative
// testing never exercises. Driven off the lang prototype lists so new
// constructs fail here until the generator learns them.
func TestFullVocabularyCoverage(t *testing.T) {
	g := testGen(t, 42)
	actions := make(map[string]bool)
	exprs := make(map[string]bool)
	var walkExpr func(e lang.Expr)
	walkExpr = func(e lang.Expr) {
		if e == nil {
			return
		}
		exprs[fmt.Sprintf("%T", e)] = true
		switch v := e.(type) {
		case lang.And:
			for _, s := range v.Exprs {
				walkExpr(s)
			}
		case lang.Or:
			for _, s := range v.Exprs {
				walkExpr(s)
			}
		case lang.Not:
			walkExpr(v.Expr)
		case lang.Cmp:
			walkExpr(v.L)
			walkExpr(v.R)
		case lang.In:
			walkExpr(v.L)
			for _, s := range v.Set {
				walkExpr(s)
			}
		case lang.Arith:
			walkExpr(v.L)
			walkExpr(v.R)
		}
	}
	for i := 0; i < 400; i++ {
		p, err := g.Program(i)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		for _, name := range p.Attack.StateNames() {
			for _, rule := range p.Attack.States[name].Rules {
				walkExpr(rule.Cond)
				for _, act := range rule.Actions {
					actions[fmt.Sprintf("%T", act)] = true
					switch v := act.(type) {
					case lang.ModifyField:
						walkExpr(v.Value)
					case lang.ModifyMetadata:
						walkExpr(v.Value)
					case lang.DequePush:
						walkExpr(v.Value)
					}
				}
			}
		}
	}
	for _, proto := range lang.ActionPrototypes() {
		if !actions[fmt.Sprintf("%T", proto)] {
			t.Errorf("action type %T never generated in 400 programs", proto)
		}
	}
	for _, proto := range lang.ExprPrototypes() {
		if !exprs[fmt.Sprintf("%T", proto)] {
			t.Errorf("expr type %T never generated in 400 programs", proto)
		}
	}
}

func TestVocabularyIntrospection(t *testing.T) {
	v := testVocab(t)
	if len(v.Conns) == 0 || len(v.StringPool) == 0 || len(v.Templates) != 3 {
		t.Fatalf("vocabulary incomplete: %+v", v)
	}
	names := synth.MessageTypeNames()
	if len(names) < 20 {
		t.Fatalf("only %d message type names introspected", len(names))
	}
	for _, n := range names {
		if strings.HasPrefix(n, "UNKNOWN_TYPE") {
			t.Fatalf("fallback name leaked into pool: %s", n)
		}
	}
	if _, err := synth.New(synth.Config{Seed: 1}); err == nil {
		t.Fatal("New accepted an empty vocabulary")
	}
}
