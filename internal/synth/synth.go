package synth

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"time"

	"attain/internal/core/compile"
	"attain/internal/core/lang"
	"attain/internal/core/model"
)

// Config parameterizes a Generator. Only Seed and Vocab are required; the
// Max knobs default to a shape that keeps generated programs small enough
// to read but deep enough to exercise every grammar production.
type Config struct {
	// Seed is the campaign-level base seed. Per-program seeds are derived
	// from it with ProgramSeed.
	Seed int64
	// Vocab is the name pool programs draw from.
	Vocab Vocabulary
	// MaxStates bounds the state count (minimum 2). Default 4.
	MaxStates int
	// MaxRules bounds rules per state. Default 2.
	MaxRules int
	// MaxActions bounds actions per rule. Default 3.
	MaxActions int
	// MaxDepth bounds expression nesting. Default 2.
	MaxDepth int
}

// Generator produces well-typed attack programs. It is safe for concurrent
// use: Program is a pure function of (Config.Seed, index).
type Generator struct {
	cfg      Config
	attacker *model.AttackerModel
	actions  []actionChoice
	weight   int
	intProps []string
	strProps []string
	metaProp []string
}

// Program is one generated attack: the structural form, its canonical DSL
// text, and the seed it was derived from.
type Program struct {
	Index  int
	Seed   int64
	Attack *lang.Attack
	// DSL is the canonical text emitted by compile.FormatAttack. Parsing
	// it and re-formatting reproduces it byte-identically (the synth
	// property tests hold this for every program).
	DSL string
}

// SHA256 returns the hex digest of the program's DSL text — the identity
// used by determinism checks across runs and grid workers.
func (p *Program) SHA256() string {
	sum := sha256.Sum256([]byte(p.DSL))
	return hex.EncodeToString(sum[:])
}

// ProgramSeed derives the per-program seed for index from a base seed.
// SplitMix64-style finalization: one multiplicative step then avalanche,
// so neighbouring indices get uncorrelated streams. Exported so grid
// shards and the campaign layer can label scenarios with the exact seed
// that regenerates the program.
func ProgramSeed(base int64, index int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(index+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	s := int64(z)
	if s == 0 {
		s = 1
	}
	return s
}

// actionChoice is one entry in the weighted action table.
type actionChoice struct {
	proto  lang.Action
	weight int
}

// New builds a Generator. It errors if the vocabulary is unusable or if
// the language grew an action type this package does not know how to
// generate (vocabulary drift must be loud, not silently skipped).
func New(cfg Config) (*Generator, error) {
	if cfg.Vocab.System == nil {
		return nil, fmt.Errorf("synth: vocabulary has no system model")
	}
	if len(cfg.Vocab.Conns) == 0 {
		return nil, fmt.Errorf("synth: vocabulary has no control-plane connections")
	}
	if len(cfg.Vocab.StringPool) == 0 {
		return nil, fmt.Errorf("synth: vocabulary has an empty string pool")
	}
	if len(cfg.Vocab.Deques) == 0 {
		return nil, fmt.Errorf("synth: vocabulary has no deque names")
	}
	if cfg.MaxStates < 2 {
		cfg.MaxStates = 4
	}
	if cfg.MaxRules < 1 {
		cfg.MaxRules = 2
	}
	if cfg.MaxActions < 1 {
		cfg.MaxActions = 3
	}
	if cfg.MaxDepth < 1 {
		cfg.MaxDepth = 2
	}
	g := &Generator{cfg: cfg, attacker: cfg.Vocab.Attacker()}
	for _, name := range lang.Properties() {
		if lang.PropertyKindOf(name) == lang.PropertyString {
			g.strProps = append(g.strProps, name)
		} else {
			g.intProps = append(g.intProps, name)
		}
		if lang.MetadataProperty(name) {
			g.metaProp = append(g.metaProp, name)
		}
	}
	// The action table is derived from the language's own prototype list.
	// Weights bias toward observation/injection actions and away from
	// destructive ones, so a typical program perturbs the control channel
	// without flatlining it; every type keeps nonzero weight so the full
	// vocabulary is reachable.
	for _, proto := range lang.ActionPrototypes() {
		w := 0
		switch proto.(type) {
		case lang.PassMessage:
			w = 3
		case lang.InjectMessage:
			if len(cfg.Vocab.Templates) > 0 {
				w = 3
			}
		case lang.StoreMessage, lang.SendStored, lang.DequePush, lang.GotoState, lang.DuplicateMessage:
			w = 2
		case lang.DropMessage, lang.DelayMessage, lang.FuzzMessage, lang.ModifyField,
			lang.ModifyMetadata, lang.DequeDiscard, lang.Sleep:
			w = 1
		case lang.SysCmd:
			if len(cfg.Vocab.Hosts) > 0 {
				w = 1
			}
		default:
			return nil, fmt.Errorf("synth: no generator for action type %T (vocabulary drift — teach internal/synth about it)", proto)
		}
		if w > 0 {
			g.actions = append(g.actions, actionChoice{proto: proto, weight: w})
			g.weight += w
		}
	}
	return g, nil
}

// Seed returns the generator's base seed.
func (g *Generator) Seed() int64 { return g.cfg.Seed }

// Attacker returns the full attacker model programs validate against.
func (g *Generator) Attacker() *model.AttackerModel { return g.attacker }

// System returns the system model programs are generated against.
func (g *Generator) System() *model.System { return g.cfg.Vocab.System }

// Program generates program index. The result is deterministic: the same
// (Config.Seed, index) pair yields byte-identical DSL on every call, in
// every process. Every program is self-validated against the vocabulary's
// system under the full attacker model before being returned.
func (g *Generator) Program(index int) (*Program, error) {
	if index < 0 {
		return nil, fmt.Errorf("synth: negative program index %d", index)
	}
	seed := ProgramSeed(g.cfg.Seed, index)
	b := &builder{gen: g, rng: rand.New(rand.NewSource(seed))}
	attack := b.attack(fmt.Sprintf("synth-%06d", index))
	if b.err != nil {
		return nil, fmt.Errorf("synth: program %d: %w", index, b.err)
	}
	if err := attack.Validate(g.cfg.Vocab.System, g.attacker); err != nil {
		return nil, fmt.Errorf("synth: program %d failed self-validation (generator bug): %w", index, err)
	}
	return &Program{Index: index, Seed: seed, Attack: attack, DSL: compile.FormatAttack(attack)}, nil
}

// Programs generates programs [0, count).
func (g *Generator) Programs(count int) ([]*Program, error) {
	out := make([]*Program, 0, count)
	for i := 0; i < count; i++ {
		p, err := g.Program(i)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// builder holds the per-program generation state. All randomness flows
// through rng; the vocabulary is iterated in deterministic order only.
type builder struct {
	gen    *Generator
	rng    *rand.Rand
	states []string
	phi    int
	err    error
}

// Durations are drawn from fixed menus whose String() forms are dot-free
// (the lexer reads durations as digits+unit; "1.5s" would not re-lex), and
// kept short so delays cannot stall a campaign executor for long.
var (
	delayMenu = []time.Duration{5 * time.Millisecond, 20 * time.Millisecond, 100 * time.Millisecond}
	sleepMenu = []time.Duration{1 * time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond}
	probMenu  = []float64{0.25, 0.5, 0.75}
	intMenu   = []int64{-1, 0, 1, 2, 3, 8, 64, 100, 128, 1024}
)

func (b *builder) attack(name string) *lang.Attack {
	n := 2 + b.rng.Intn(b.gen.cfg.MaxStates-1)
	b.states = make([]string, n)
	for i := range b.states {
		b.states[i] = fmt.Sprintf("sigma%d", i+1)
	}
	// Most programs get an absorbing end state (rule-less), exercising the
	// formatter/parser on empty states and giving goto a terminal target.
	endState := b.rng.Intn(10) < 7
	a := lang.NewAttack(name, b.states[0])
	for i, sname := range b.states {
		st := &lang.State{Name: sname}
		if !(endState && i == n-1) {
			rules := 1 + b.rng.Intn(b.gen.cfg.MaxRules)
			for r := 0; r < rules; r++ {
				st.Rules = append(st.Rules, b.rule())
			}
		}
		a.AddState(st)
	}
	return a
}

func (b *builder) rule() *lang.Rule {
	b.phi++
	rule := &lang.Rule{Name: fmt.Sprintf("phi%d", b.phi)}
	conns := b.gen.cfg.Vocab.Conns
	k := 1 + b.rng.Intn(min(3, len(conns)))
	for _, idx := range b.rng.Perm(len(conns))[:k] {
		rule.Conns = append(rule.Conns, conns[idx])
	}
	rule.Cond = b.boolExpr(b.gen.cfg.MaxDepth)
	// ~15% of rules only observe (no action list — FormatAttack omits the
	// do line entirely, which the round-trip tests must survive).
	if b.rng.Intn(100) >= 15 {
		count := 1 + b.rng.Intn(b.gen.cfg.MaxActions)
		for i := 0; i < count; i++ {
			rule.Actions = append(rule.Actions, b.action())
		}
	}
	if b.rng.Intn(4) == 0 {
		rule.Prob = probMenu[b.rng.Intn(len(probMenu))]
	}
	// Capabilities: usually the exact requirement γ (exercising the
	// comma-joined list form), sometimes the notls/tls shorthand sets.
	need := rule.RequiredCaps()
	switch b.rng.Intn(6) {
	case 0:
		rule.Caps = model.AllCapabilities
	case 1:
		if model.TLSCapabilities.HasAll(need) {
			rule.Caps = model.TLSCapabilities
		} else {
			rule.Caps = need
		}
	default:
		rule.Caps = need
	}
	return rule
}

// ---- Expressions ----

// boolExpr generates a boolean-valued expression with nesting bounded by
// depth. Conditions never contain side effects (DequeTake appears only in
// action value positions), matching the validator's purity check.
func (b *builder) boolExpr(depth int) lang.Expr {
	if depth <= 0 {
		return b.boolLeaf(0)
	}
	switch b.rng.Intn(10) {
	case 0:
		return lang.And{Exprs: b.boolList(depth - 1)}
	case 1:
		return lang.Or{Exprs: b.boolList(depth - 1)}
	case 2:
		return lang.Not{Expr: b.boolExpr(depth - 1)}
	default:
		return b.boolLeaf(depth - 1)
	}
}

// boolList yields 2-3 sub-expressions: And/Or with a single element would
// format as a bare parenthesized expression and re-parse as its child, so
// compounds always carry at least two.
func (b *builder) boolList(depth int) []lang.Expr {
	n := 2 + b.rng.Intn(2)
	exprs := make([]lang.Expr, n)
	for i := range exprs {
		exprs[i] = b.boolExpr(depth)
	}
	return exprs
}

func (b *builder) boolLeaf(depth int) lang.Expr {
	switch b.rng.Intn(10) {
	case 0, 1, 2, 3:
		// The dominant leaf: a message-type guard, so most rules fire on
		// specific control traffic instead of everything.
		return lang.Cmp{Op: lang.OpEq, L: lang.Prop{Name: lang.PropType}, R: lang.Lit{Value: b.poolString()}}
	case 4:
		op := lang.OpEq
		if b.rng.Intn(2) == 0 {
			op = lang.OpNe
		}
		return lang.Cmp{Op: op, L: b.strOperand(), R: b.strOperand()}
	case 5, 6:
		ops := []lang.CmpOp{lang.OpEq, lang.OpNe, lang.OpLt, lang.OpLe, lang.OpGt, lang.OpGe}
		return lang.Cmp{Op: ops[b.rng.Intn(len(ops))], L: b.intOperand(depth, false), R: b.intOperand(depth, false)}
	case 7:
		set := make([]lang.Expr, 2+b.rng.Intn(2))
		for i := range set {
			set[i] = lang.Lit{Value: b.poolString()}
		}
		return lang.In{L: b.strOperand(), Set: set}
	case 8:
		set := make([]lang.Expr, 2+b.rng.Intn(2))
		for i := range set {
			set[i] = lang.Lit{Value: b.intLit()}
		}
		return lang.In{L: b.intOperand(depth, false), Set: set}
	default:
		return lang.Not{Expr: b.boolLeaf(depth)}
	}
}

// intOperand generates an integer-valued operand. allowTake permits the
// side-effecting deque takes (shift/pop), legal only in action values.
func (b *builder) intOperand(depth int, allowTake bool) lang.Expr {
	r := b.rng.Intn(8)
	switch {
	case r <= 2:
		return lang.Lit{Value: b.intLit()}
	case r <= 4:
		return lang.Prop{Name: b.gen.intProps[b.rng.Intn(len(b.gen.intProps))]}
	case r == 5:
		if allowTake && b.rng.Intn(2) == 0 {
			return lang.DequeTake{Deque: b.deque(), End: b.rng.Intn(2) == 0}
		}
		return lang.DequeRead{Deque: b.deque(), End: b.rng.Intn(2) == 0}
	default:
		if depth > 0 {
			op := lang.OpAdd
			if b.rng.Intn(2) == 0 {
				op = lang.OpSub
			}
			return lang.Arith{Op: op, L: b.intOperand(depth-1, allowTake), R: b.intOperand(depth-1, allowTake)}
		}
		return lang.Lit{Value: b.intLit()}
	}
}

func (b *builder) strOperand() lang.Expr {
	if b.rng.Intn(3) == 0 {
		return lang.Prop{Name: b.gen.strProps[b.rng.Intn(len(b.gen.strProps))]}
	}
	return lang.Lit{Value: b.poolString()}
}

func (b *builder) intLit() int64 { return intMenu[b.rng.Intn(len(intMenu))] }

func (b *builder) poolString() string {
	pool := b.gen.cfg.Vocab.StringPool
	return pool[b.rng.Intn(len(pool))]
}

func (b *builder) deque() string {
	d := b.gen.cfg.Vocab.Deques
	return d[b.rng.Intn(len(d))]
}

// ---- Actions ----

func (b *builder) action() lang.Action {
	roll := b.rng.Intn(b.gen.weight)
	var proto lang.Action
	for _, c := range b.gen.actions {
		if roll < c.weight {
			proto = c.proto
			break
		}
		roll -= c.weight
	}
	switch proto.(type) {
	case lang.DropMessage:
		return lang.DropMessage{}
	case lang.PassMessage:
		return lang.PassMessage{}
	case lang.DelayMessage:
		return lang.DelayMessage{D: delayMenu[b.rng.Intn(len(delayMenu))]}
	case lang.DuplicateMessage:
		return lang.DuplicateMessage{}
	case lang.FuzzMessage:
		// Seed 0 formats as bare "fuzz"; explicit seeds stay positive
		// (a negative literal after "fuzz" does not re-lex).
		if b.rng.Intn(2) == 0 {
			return lang.FuzzMessage{}
		}
		return lang.FuzzMessage{Seed: 1 + b.rng.Int63n(1<<30)}
	case lang.ModifyField:
		name := b.gen.intProps[b.rng.Intn(len(b.gen.intProps))]
		return lang.ModifyField{Field: name, Value: b.intOperand(1, true)}
	case lang.ModifyMetadata:
		name := b.gen.metaProp[b.rng.Intn(len(b.gen.metaProp))]
		if lang.PropertyKindOf(name) == lang.PropertyString {
			return lang.ModifyMetadata{Field: name, Value: b.strOperand()}
		}
		return lang.ModifyMetadata{Field: name, Value: b.intOperand(1, true)}
	case lang.InjectMessage:
		dir := lang.ControllerToSwitch
		if b.rng.Intn(2) == 0 {
			dir = lang.SwitchToController
		}
		tmpl := b.gen.cfg.Vocab.Templates[b.rng.Intn(len(b.gen.cfg.Vocab.Templates))]
		return lang.InjectMessage{Template: tmpl, Direction: dir}
	case lang.SendStored:
		return lang.SendStored{Deque: b.deque(), FromEnd: b.rng.Intn(2) == 0}
	case lang.StoreMessage:
		return lang.StoreMessage{Deque: b.deque(), Front: b.rng.Intn(2) == 0}
	case lang.DequePush:
		d := b.deque()
		// The counter idiom from the paper's replay examples: push
		// take(d)+1 so the deque holds a running count.
		if b.rng.Intn(3) == 0 {
			return lang.DequePush{Deque: d, Value: lang.Arith{
				Op: lang.OpAdd, L: lang.DequeTake{Deque: d}, R: lang.Lit{Value: int64(1)},
			}}
		}
		return lang.DequePush{Deque: d, Front: b.rng.Intn(2) == 0, Value: b.intOperand(1, true)}
	case lang.DequeDiscard:
		return lang.DequeDiscard{Deque: b.deque(), FromEnd: b.rng.Intn(2) == 0}
	case lang.GotoState:
		return lang.GotoState{State: b.states[b.rng.Intn(len(b.states))]}
	case lang.Sleep:
		return lang.Sleep{D: sleepMenu[b.rng.Intn(len(sleepMenu))]}
	case lang.SysCmd:
		host := b.gen.cfg.Vocab.Hosts[b.rng.Intn(len(b.gen.cfg.Vocab.Hosts))]
		return lang.SysCmd{Host: model.NodeID(host), Cmd: "probe latency"}
	default:
		if b.err == nil {
			b.err = fmt.Errorf("synth: action table produced unknown prototype %T", proto)
		}
		return lang.PassMessage{}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
