package dataplane

import (
	"errors"
	"sync"
	"testing"
	"time"

	"attain/internal/clock"
	"attain/internal/netaddr"
)

// wireHosts connects two hosts back-to-back.
func wireHosts(a, b *Host) {
	a.AttachOutput(b.Input)
	b.AttachOutput(a.Input)
}

func newHostPair(t *testing.T) (*Host, *Host) {
	t.Helper()
	clk := clock.New()
	a := NewHost("hA", macA, ipA, clk)
	b := NewHost("hB", macB, ipB, clk)
	wireHosts(a, b)
	return a, b
}

func TestARPResolution(t *testing.T) {
	a, _ := newHostPair(t)
	mac, err := a.Resolve(ipB)
	if err != nil {
		t.Fatal(err)
	}
	if mac != macB {
		t.Errorf("resolved %s, want %s", mac, macB)
	}
	// Second resolution hits the cache (works even if B goes deaf).
	a.AttachOutput(func([]byte) {})
	mac, err = a.Resolve(ipB)
	if err != nil || mac != macB {
		t.Errorf("cached resolve = %s, %v", mac, err)
	}
}

func TestARPTimeout(t *testing.T) {
	clk := clock.New()
	a := NewHost("hA", macA, ipA, clk)
	a.ARPTimeout = 20 * time.Millisecond
	a.AttachOutput(func([]byte) {}) // black hole
	if _, err := a.Resolve(ipB); !errors.Is(err, ErrARPTimeout) {
		t.Errorf("Resolve into black hole = %v, want ErrARPTimeout", err)
	}
}

func TestPingRoundTrip(t *testing.T) {
	a, _ := newHostPair(t)
	rtt, err := a.Ping(ipB, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rtt < 0 || rtt > time.Second {
		t.Errorf("rtt = %v", rtt)
	}
}

func TestPingTimeout(t *testing.T) {
	a, b := newHostPair(t)
	// Let ARP succeed, then make the path one-way.
	if _, err := a.Resolve(ipB); err != nil {
		t.Fatal(err)
	}
	b.AttachOutput(func([]byte) {}) // B's replies vanish
	if _, err := a.Ping(ipB, 30*time.Millisecond); !errors.Is(err, ErrPingTimeout) {
		t.Errorf("Ping with black-holed replies = %v, want ErrPingTimeout", err)
	}
}

func TestPingConcurrentSequences(t *testing.T) {
	a, _ := newHostPair(t)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = a.Ping(ipB, time.Second)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("ping %d: %v", i, err)
		}
	}
}

func TestUDPDelivery(t *testing.T) {
	a, b := newHostPair(t)
	got := make(chan string, 1)
	b.HandleUDP(9999, func(src netaddr.IPv4, dgram *UDP) {
		if src == ipA && dgram.SrcPort == 1111 {
			got <- string(dgram.Payload)
		}
	})
	if err := a.SendUDP(ipB, 1111, 9999, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if msg != "hello" {
			t.Errorf("payload = %q", msg)
		}
	case <-time.After(time.Second):
		t.Fatal("datagram never delivered")
	}
}

func TestUDPUnboundPortDropped(t *testing.T) {
	a, b := newHostPair(t)
	if err := a.SendUDP(ipB, 1, 4242, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if b.Stats().RxDropped == 0 {
		t.Error("datagram to unbound port was not counted as dropped")
	}
}

func TestHostIgnoresForeignFrames(t *testing.T) {
	clk := clock.New()
	b := NewHost("hB", macB, ipB, clk)
	other := netaddr.MustParseMAC("0a:00:00:00:00:99")
	frame := (&Ethernet{Dst: other, Src: macA, EtherType: EtherTypeIPv4}).Marshal()
	b.Input(frame)
	st := b.Stats()
	if st.RxDropped != 1 || st.RxFrames != 1 {
		t.Errorf("stats = %+v, want 1 dropped of 1", st)
	}
}

func TestHostStatsCount(t *testing.T) {
	a, b := newHostPair(t)
	if _, err := a.Ping(ipB, time.Second); err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.TxFrames == 0 || sa.RxFrames == 0 || sb.TxFrames == 0 || sb.RxFrames == 0 {
		t.Errorf("counters not advancing: a=%+v b=%+v", sa, sb)
	}
}

func TestICMPReplyWithoutARPCacheEntry(t *testing.T) {
	// A host receiving an echo request from a peer it has never ARPed
	// resolves the sender asynchronously and still replies.
	clk := clock.New()
	a := NewHost("hA", macA, ipA, clk)
	b := NewHost("hB", macB, ipB, clk)
	a.AttachOutput(b.Input)
	b.AttachOutput(a.Input)

	// Hand-deliver an echo request to B without any prior ARP exchange,
	// so B's ARP table has no entry for A.
	echo := &ICMPEcho{IsRequest: true, Ident: 9, Seq: 1}
	ip := &IPv4{TTL: 64, Protocol: ProtoICMP, Src: ipA, Dst: ipB, Payload: echo.Marshal()}
	frame := (&Ethernet{Dst: macB, Src: macA, EtherType: EtherTypeIPv4, Payload: ip.Marshal()}).Marshal()
	b.Input(frame)

	// B must ARP for A and deliver the reply; A's stack answers the ARP.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if a.Stats().RxFrames >= 2 { // ARP request + echo reply
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("echo reply never arrived: a stats %+v", a.Stats())
}

func TestUDPZeroChecksumAccepted(t *testing.T) {
	// RFC 768: checksum 0 means "no checksum"; receivers must accept.
	u := &UDP{SrcPort: 1, DstPort: 2, Payload: []byte("x")}
	wire := u.Marshal(ipA, ipB)
	wire[6], wire[7] = 0, 0 // clear the checksum
	got, err := UnmarshalUDP(ipA, ipB, wire)
	if err != nil {
		t.Fatalf("zero-checksum datagram rejected: %v", err)
	}
	if string(got.Payload) != "x" {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestIperfServerIgnoresUnknownConnections(t *testing.T) {
	a, b := newHostPair(t)
	srv := NewIperfServer(b, IperfPort)
	defer srv.Close()
	// A data segment for a connection that never SYN'd is ignored.
	seg := &TCP{SrcPort: 50000, DstPort: IperfPort, Seq: 5, Flags: TCPAck | TCPPsh, Payload: []byte("stray")}
	if err := a.SendTCP(ipB, seg); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if srv.BytesReceived() != 0 {
		t.Errorf("server counted %d bytes from an unknown connection", srv.BytesReceived())
	}
}

func TestIperfDuplicateSegmentsNotDoubleCounted(t *testing.T) {
	a, b := newHostPair(t)
	srv := NewIperfServer(b, IperfPort)
	defer srv.Close()
	res, err := RunIperfClient(a, ipB, IperfPort, 50*time.Millisecond, IperfConfig{
		SegmentSize: 100, Window: 2, RTO: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Duplicates from RTO retransmissions must not be double counted: the
	// server's in-order byte count can exceed the client's acked count
	// only by data still in flight at the deadline (at most one window).
	window := uint64(2 * 100)
	if srv.BytesReceived() < res.BytesAcked || srv.BytesReceived() > res.BytesAcked+window {
		t.Errorf("server %d outside [acked %d, acked+window %d] (duplicates double-counted?)",
			srv.BytesReceived(), res.BytesAcked, res.BytesAcked+window)
	}
}

func TestIperfBackToBack(t *testing.T) {
	a, b := newHostPair(t)
	srv := NewIperfServer(b, IperfPort)
	defer srv.Close()

	res, err := RunIperfClient(a, ipB, IperfPort, 100*time.Millisecond, IperfConfig{
		SegmentSize: 1000,
		Window:      8,
		RTO:         20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Connected {
		t.Fatal("client reports not connected")
	}
	if res.BytesAcked == 0 {
		t.Fatal("no bytes acked")
	}
	if srv.BytesReceived() < res.BytesAcked {
		t.Errorf("server received %d < client acked %d", srv.BytesReceived(), res.BytesAcked)
	}
	if res.ThroughputMbps() <= 0 {
		t.Errorf("throughput = %v", res.ThroughputMbps())
	}
}

func TestIperfConnectTimeout(t *testing.T) {
	clk := clock.New()
	a := NewHost("hA", macA, ipA, clk)
	a.ARPTimeout = 10 * time.Millisecond
	a.AttachOutput(func([]byte) {}) // nothing ever answers
	res, err := RunIperfClient(a, ipB, IperfPort, 50*time.Millisecond, IperfConfig{
		ConnectTimeout: 10 * time.Millisecond,
		ConnectRetries: 2,
	})
	if !errors.Is(err, ErrIperfConnect) {
		t.Fatalf("err = %v, want ErrIperfConnect", err)
	}
	if res.Connected || res.BytesAcked != 0 || res.ThroughputMbps() != 0 {
		t.Errorf("result = %+v, want zeroes", res)
	}
}

func TestIperfSurvivesLoss(t *testing.T) {
	clk := clock.New()
	a := NewHost("hA", macA, ipA, clk)
	b := NewHost("hB", macB, ipB, clk)
	// Drop every 5th frame in each direction.
	var na, nb int
	var muA, muB sync.Mutex
	a.AttachOutput(func(f []byte) {
		muA.Lock()
		na++
		drop := na%5 == 0
		muA.Unlock()
		if !drop {
			b.Input(f)
		}
	})
	b.AttachOutput(func(f []byte) {
		muB.Lock()
		nb++
		drop := nb%5 == 0
		muB.Unlock()
		if !drop {
			a.Input(f)
		}
	})
	srv := NewIperfServer(b, IperfPort)
	defer srv.Close()
	res, err := RunIperfClient(a, ipB, IperfPort, 200*time.Millisecond, IperfConfig{
		SegmentSize: 500,
		Window:      4,
		RTO:         10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesAcked == 0 {
		t.Error("no progress under 20% loss")
	}
	if res.Retransmits == 0 {
		t.Error("expected retransmissions under loss")
	}
}
