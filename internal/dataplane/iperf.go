package dataplane

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"attain/internal/netaddr"
)

// IperfPort is the default iperf server port.
const IperfPort uint16 = 5001

// ErrIperfConnect is returned when the client handshake never completes,
// i.e. the path is fully denied (the paper's "throughput is zero" case).
var ErrIperfConnect = errors.New("dataplane: iperf connect timed out")

// IperfConfig tunes the iperf-like workload generator.
type IperfConfig struct {
	// SegmentSize is the payload bytes per segment (default 1400).
	SegmentSize int
	// Window is the go-back-N window in segments (default 32).
	Window int
	// RTO is the retransmission timeout (default 200 ms).
	RTO time.Duration
	// ConnectTimeout bounds each SYN attempt (default 1 s).
	ConnectTimeout time.Duration
	// ConnectRetries is the number of SYN attempts (default 3).
	ConnectRetries int
}

func (c *IperfConfig) setDefaults() {
	if c.SegmentSize <= 0 {
		c.SegmentSize = 1400
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.RTO <= 0 {
		c.RTO = 200 * time.Millisecond
	}
	if c.ConnectTimeout <= 0 {
		c.ConnectTimeout = time.Second
	}
	if c.ConnectRetries <= 0 {
		c.ConnectRetries = 3
	}
}

// IperfResult summarizes one client trial.
type IperfResult struct {
	// Connected reports whether the handshake completed.
	Connected bool
	// BytesAcked is the number of payload bytes acknowledged.
	BytesAcked uint64
	// Elapsed is the measured (virtual) transfer interval.
	Elapsed time.Duration
	// Retransmits counts go-back-N window rollbacks.
	Retransmits int
}

// ThroughputMbps returns the achieved goodput in megabits per second.
func (r IperfResult) ThroughputMbps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.BytesAcked) * 8 / r.Elapsed.Seconds() / 1e6
}

// IperfServer accepts iperf connections on a host and counts received
// bytes. Segments are processed on a dedicated goroutine so the host input
// path never blocks on ARP resolution for ACK replies.
type IperfServer struct {
	host *Host
	port uint16

	mu    sync.Mutex
	conns map[string]*iperfSrvConn
	bytes uint64

	segCh chan srvSegment
	stop  chan struct{}
	done  chan struct{}
}

type srvSegment struct {
	src netaddr.IPv4
	seg *TCP
}

type iperfSrvConn struct {
	nextSeq uint32
	isn     uint32
}

// NewIperfServer starts an iperf server on h listening on port.
func NewIperfServer(h *Host, port uint16) *IperfServer {
	s := &IperfServer{
		host:  h,
		port:  port,
		conns: make(map[string]*iperfSrvConn),
		segCh: make(chan srvSegment, 4096),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	h.HandleTCP(port, func(src netaddr.IPv4, seg *TCP) {
		select {
		case s.segCh <- srvSegment{src: src, seg: cloneTCP(seg)}:
		default:
			// Input overrun: drop; the client's go-back-N recovers.
		}
	})
	go s.run()
	return s
}

// cloneTCP copies a segment whose payload aliases a network buffer.
func cloneTCP(seg *TCP) *TCP {
	c := *seg
	c.Payload = append([]byte(nil), seg.Payload...)
	return &c
}

// BytesReceived returns the total in-order payload bytes received across
// all connections.
func (s *IperfServer) BytesReceived() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Close stops the server and unregisters its port handler.
func (s *IperfServer) Close() {
	s.host.UnhandleTCP(s.port)
	close(s.stop)
	<-s.done
}

func (s *IperfServer) run() {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			return
		case in := <-s.segCh:
			s.handle(in.src, in.seg)
		}
	}
}

func (s *IperfServer) handle(src netaddr.IPv4, seg *TCP) {
	key := fmt.Sprintf("%s:%d", src, seg.SrcPort)
	s.mu.Lock()
	conn := s.conns[key]
	s.mu.Unlock()

	switch {
	case seg.Flags&TCPSyn != 0:
		conn = &iperfSrvConn{nextSeq: seg.Seq + 1, isn: 1000}
		s.mu.Lock()
		s.conns[key] = conn
		s.mu.Unlock()
		s.reply(src, seg.SrcPort, &TCP{
			Seq: conn.isn, Ack: conn.nextSeq,
			Flags: TCPSyn | TCPAck, Window: 0xffff,
		})
	case conn == nil:
		// Segment for an unknown connection: ignore.
	case len(seg.Payload) > 0:
		if seg.Seq == conn.nextSeq {
			conn.nextSeq += uint32(len(seg.Payload))
			s.mu.Lock()
			s.bytes += uint64(len(seg.Payload))
			s.mu.Unlock()
		}
		// Cumulative ACK (re-ack on duplicate or gap).
		s.reply(src, seg.SrcPort, &TCP{
			Seq: conn.isn + 1, Ack: conn.nextSeq,
			Flags: TCPAck, Window: 0xffff,
		})
	}
}

func (s *IperfServer) reply(dst netaddr.IPv4, dstPort uint16, seg *TCP) {
	seg.SrcPort = s.port
	seg.DstPort = dstPort
	// SendTCP may block on first-contact ARP; acceptable here because we
	// are on the server's dedicated goroutine, not the host input path.
	_ = s.host.SendTCP(dst, seg)
}

// iperfClientPortBase seeds ephemeral port allocation.
var iperfClientPort struct {
	mu   sync.Mutex
	next uint16
}

func nextClientPort() uint16 {
	iperfClientPort.mu.Lock()
	defer iperfClientPort.mu.Unlock()
	if iperfClientPort.next < 40000 || iperfClientPort.next > 60000 {
		iperfClientPort.next = 40000
	}
	iperfClientPort.next++
	return iperfClientPort.next
}

// RunIperfClient runs one iperf trial from h to the server at addr:port,
// transferring for the given (virtual) duration, and reports the result.
// A handshake failure returns ErrIperfConnect with a zero-throughput result,
// matching the paper's denial-of-service outcome.
func RunIperfClient(h *Host, addr netaddr.IPv4, port uint16, duration time.Duration, cfg IperfConfig) (IperfResult, error) {
	cfg.setDefaults()
	srcPort := nextClientPort()

	segCh := make(chan *TCP, 1024)
	h.HandleTCP(srcPort, func(_ netaddr.IPv4, seg *TCP) {
		select {
		case segCh <- cloneTCP(seg):
		default:
		}
	})
	defer h.UnhandleTCP(srcPort)

	send := func(seg *TCP) error {
		seg.SrcPort = srcPort
		seg.DstPort = port
		return h.SendTCP(addr, seg)
	}

	// Three-way handshake with retries.
	const isn = 100
	connected := false
handshake:
	for attempt := 0; attempt < cfg.ConnectRetries; attempt++ {
		if err := send(&TCP{Seq: isn, Flags: TCPSyn, Window: 0xffff}); err != nil {
			continue // e.g. ARP timeout: retry
		}
		timeout := h.clk.After(cfg.ConnectTimeout)
		for {
			select {
			case seg := <-segCh:
				if seg.Flags&(TCPSyn|TCPAck) == TCPSyn|TCPAck && seg.Ack == isn+1 {
					connected = true
					_ = send(&TCP{Seq: isn + 1, Ack: seg.Seq + 1, Flags: TCPAck, Window: 0xffff})
					break handshake
				}
			case <-timeout:
				continue handshake
			}
		}
	}
	if !connected {
		return IperfResult{}, fmt.Errorf("%w (host %s to %s:%d)", ErrIperfConnect, h.Name(), addr, port)
	}

	// Go-back-N transfer. Sequence numbers are payload byte offsets from
	// isn+1.
	payload := make([]byte, cfg.SegmentSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	var (
		base        = uint32(isn + 1)
		next        = uint32(isn + 1)
		result      IperfResult
		windowBytes = uint32(cfg.Window * cfg.SegmentSize)
	)
	result.Connected = true
	start := h.clk.Now()
	deadline := start.Add(duration)

	for {
		now := h.clk.Now()
		if !now.Before(deadline) {
			break
		}
		// Fill the window.
		for next-base < windowBytes {
			if err := send(&TCP{Seq: next, Ack: 0, Flags: TCPAck | TCPPsh, Window: 0xffff, Payload: payload}); err != nil {
				break
			}
			next += uint32(len(payload))
		}
		remaining := deadline.Sub(h.clk.Now())
		if remaining <= 0 {
			break
		}
		rto := cfg.RTO
		if rto > remaining {
			rto = remaining
		}
		select {
		case seg := <-segCh:
			if seg.Flags&TCPAck != 0 && seg.Ack > base {
				base = seg.Ack
			}
		case <-h.clk.After(rto):
			if base < next {
				// Timeout: roll the window back (go-back-N).
				next = base
				result.Retransmits++
			}
		}
	}
	result.BytesAcked = uint64(base - (isn + 1))
	result.Elapsed = h.clk.Now().Sub(start)
	return result, nil
}
