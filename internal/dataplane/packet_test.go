package dataplane

import (
	"bytes"
	"testing"
	"testing/quick"

	"attain/internal/netaddr"
	"attain/internal/openflow"
)

var (
	macA = netaddr.MustParseMAC("0a:00:00:00:00:01")
	macB = netaddr.MustParseMAC("0a:00:00:00:00:02")
	ipA  = netaddr.MustParseIPv4("10.0.0.1")
	ipB  = netaddr.MustParseIPv4("10.0.0.2")
)

func TestEthernetRoundTrip(t *testing.T) {
	e := &Ethernet{Dst: macB, Src: macA, EtherType: EtherTypeIPv4, Payload: []byte{1, 2, 3}}
	got, err := UnmarshalEthernet(e.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Dst != macB || got.Src != macA || got.EtherType != EtherTypeIPv4 || !bytes.Equal(got.Payload, []byte{1, 2, 3}) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got.Tagged {
		t.Error("untagged frame decoded as tagged")
	}
}

func TestEthernetVLANRoundTrip(t *testing.T) {
	e := &Ethernet{Dst: macB, Src: macA, Tagged: true, VLAN: 42, Priority: 5, EtherType: EtherTypeARP, Payload: []byte{9}}
	got, err := UnmarshalEthernet(e.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Tagged || got.VLAN != 42 || got.Priority != 5 || got.EtherType != EtherTypeARP {
		t.Errorf("VLAN round trip mismatch: %+v", got)
	}
}

func TestEthernetShort(t *testing.T) {
	if _, err := UnmarshalEthernet(make([]byte, 13)); err == nil {
		t.Error("short frame decoded")
	}
	// Tagged frame with truncated tag.
	e := &Ethernet{Dst: macB, Src: macA, Tagged: true, EtherType: EtherTypeIPv4}
	if _, err := UnmarshalEthernet(e.Marshal()[:15]); err == nil {
		t.Error("truncated VLAN tag decoded")
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := &ARP{Op: ARPOpRequest, SenderMAC: macA, SenderIP: ipA, TargetIP: ipB}
	got, err := UnmarshalARP(a.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *a {
		t.Errorf("got %+v, want %+v", got, a)
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	p := &IPv4{TOS: 0x10, ID: 7, TTL: 64, Protocol: ProtoICMP, Src: ipA, Dst: ipB, Payload: []byte{1, 2, 3, 4}}
	wire := p.Marshal()
	got, err := UnmarshalIPv4(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.TOS != p.TOS || got.ID != p.ID || got.TTL != p.TTL || got.Protocol != p.Protocol ||
		got.Src != p.Src || got.Dst != p.Dst || !bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	// Corrupt one byte: checksum must catch it.
	wire[16] ^= 0xff
	if _, err := UnmarshalIPv4(wire); err == nil {
		t.Error("corrupted header decoded without error")
	}
}

func TestIPv4Malformed(t *testing.T) {
	p := &IPv4{TTL: 64, Protocol: ProtoUDP, Src: ipA, Dst: ipB}
	wire := p.Marshal()

	short := wire[:10]
	if _, err := UnmarshalIPv4(short); err == nil {
		t.Error("short packet decoded")
	}
	v6 := append([]byte(nil), wire...)
	v6[0] = 0x65
	if _, err := UnmarshalIPv4(v6); err == nil {
		t.Error("IPv6 version decoded as IPv4")
	}
}

func TestUDPRoundTripAndChecksum(t *testing.T) {
	u := &UDP{SrcPort: 1234, DstPort: 53, Payload: []byte("query")}
	wire := u.Marshal(ipA, ipB)
	got, err := UnmarshalUDP(ipA, ipB, wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 1234 || got.DstPort != 53 || !bytes.Equal(got.Payload, []byte("query")) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	wire[9] ^= 0x01
	if _, err := UnmarshalUDP(ipA, ipB, wire); err == nil {
		t.Error("corrupted datagram decoded")
	}
	// Wrong pseudo-header (different dst IP) must also fail.
	wire[9] ^= 0x01
	if _, err := UnmarshalUDP(ipA, ipA, wire); err == nil {
		t.Error("datagram decoded with wrong pseudo-header")
	}
}

func TestTCPRoundTripAndChecksum(t *testing.T) {
	seg := &TCP{SrcPort: 40001, DstPort: IperfPort, Seq: 1000, Ack: 2000,
		Flags: TCPAck | TCPPsh, Window: 0xffff, Payload: []byte("data!")}
	wire := seg.Marshal(ipA, ipB)
	got, err := UnmarshalTCP(ipA, ipB, wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != seg.SrcPort || got.DstPort != seg.DstPort || got.Seq != seg.Seq ||
		got.Ack != seg.Ack || got.Flags != seg.Flags || !bytes.Equal(got.Payload, seg.Payload) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	wire[len(wire)-1] ^= 0xff
	if _, err := UnmarshalTCP(ipA, ipB, wire); err == nil {
		t.Error("corrupted segment decoded")
	}
}

func TestICMPEchoRoundTrip(t *testing.T) {
	for _, isReq := range []bool{true, false} {
		m := &ICMPEcho{IsRequest: isReq, Ident: 7, Seq: 9, Payload: []byte("hi")}
		got, err := UnmarshalICMPEcho(m.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if got.IsRequest != isReq || got.Ident != 7 || got.Seq != 9 || !bytes.Equal(got.Payload, []byte("hi")) {
			t.Errorf("round trip mismatch: %+v", got)
		}
	}
	// Non-echo type rejected.
	bad := (&ICMPEcho{IsRequest: true}).Marshal()
	bad[0] = 3 // destination unreachable
	// Fix checksum for the new type byte.
	bad[2], bad[3] = 0, 0
	cs := Checksum(bad)
	bad[2], bad[3] = byte(cs>>8), byte(cs)
	if _, err := UnmarshalICMPEcho(bad); err == nil {
		t.Error("non-echo ICMP decoded")
	}
}

func TestChecksumProperties(t *testing.T) {
	// Verifying a buffer with its checksum in place yields zero.
	f := func(data []byte) bool {
		if len(data) < 2 {
			return true
		}
		buf := append([]byte(nil), data...)
		buf[0], buf[1] = 0, 0
		cs := Checksum(buf)
		buf[0], buf[1] = byte(cs>>8), byte(cs)
		return Checksum(buf) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func buildFrame(t *testing.T, proto uint8, payload []byte) []byte {
	t.Helper()
	ip := &IPv4{TTL: 64, Protocol: proto, Src: ipA, Dst: ipB, Payload: payload}
	return (&Ethernet{Dst: macB, Src: macA, EtherType: EtherTypeIPv4, Payload: ip.Marshal()}).Marshal()
}

func TestFieldsTCP(t *testing.T) {
	seg := &TCP{SrcPort: 40000, DstPort: 5001, Flags: TCPSyn, Window: 100}
	frame := buildFrame(t, ProtoTCP, seg.Marshal(ipA, ipB))
	f, err := Fields(3, frame)
	if err != nil {
		t.Fatal(err)
	}
	want := openflow.FieldView{
		InPort: 3, DLSrc: macA, DLDst: macB, DLVLAN: OFPVLANNone,
		DLType: EtherTypeIPv4, NWProto: ProtoTCP, NWSrc: ipA, NWDst: ipB,
		TPSrc: 40000, TPDst: 5001,
	}
	if f != want {
		t.Errorf("Fields = %+v, want %+v", f, want)
	}
}

func TestFieldsICMP(t *testing.T) {
	echo := &ICMPEcho{IsRequest: true, Ident: 1, Seq: 2}
	frame := buildFrame(t, ProtoICMP, echo.Marshal())
	f, err := Fields(1, frame)
	if err != nil {
		t.Fatal(err)
	}
	if f.NWProto != ProtoICMP || f.TPSrc != uint16(ICMPTypeEchoRequest) || f.TPDst != 0 {
		t.Errorf("ICMP fields wrong: %+v", f)
	}
}

func TestFieldsARP(t *testing.T) {
	arp := &ARP{Op: ARPOpRequest, SenderMAC: macA, SenderIP: ipA, TargetIP: ipB}
	frame := (&Ethernet{Dst: netaddr.Broadcast, Src: macA, EtherType: EtherTypeARP, Payload: arp.Marshal()}).Marshal()
	f, err := Fields(2, frame)
	if err != nil {
		t.Fatal(err)
	}
	if f.DLType != EtherTypeARP || f.NWSrc != ipA || f.NWDst != ipB || f.NWProto != uint8(ARPOpRequest) {
		t.Errorf("ARP fields wrong: %+v", f)
	}
	if !f.DLDst.IsBroadcast() {
		t.Error("ARP request dl_dst not broadcast")
	}
}

func TestFieldsVLAN(t *testing.T) {
	eth := &Ethernet{Dst: macB, Src: macA, Tagged: true, VLAN: 7, Priority: 2, EtherType: EtherTypeIPv4,
		Payload: (&IPv4{TTL: 64, Protocol: ProtoUDP, Src: ipA, Dst: ipB,
			Payload: (&UDP{SrcPort: 1, DstPort: 2}).Marshal(ipA, ipB)}).Marshal()}
	f, err := Fields(1, eth.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if f.DLVLAN != 7 || f.DLVLANPCP != 2 {
		t.Errorf("VLAN fields wrong: %+v", f)
	}
}

func TestFieldsErrors(t *testing.T) {
	if _, err := Fields(1, []byte{1, 2, 3}); err == nil {
		t.Error("short frame produced fields")
	}
}
