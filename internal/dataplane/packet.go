// Package dataplane implements the data-plane substrate of the ATTAIN
// simulator: Ethernet/ARP/IPv4/ICMP/UDP/TCP packet codecs, an end-host
// network stack with ARP resolution and ICMP echo, and the ping and iperf
// workload applications used by the paper's evaluation.
//
// The package deliberately has no dependency on the network fabric: hosts
// emit frames through an injected transmit function and receive frames via
// Input, so the netem package (or a test) can wire them to anything.
package dataplane

import (
	"encoding/binary"
	"errors"
	"fmt"

	"attain/internal/netaddr"
)

// EtherType values used by the simulator.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
	EtherTypeVLAN uint16 = 0x8100
)

// IP protocol numbers.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// ethHeaderLen is the untagged Ethernet header size.
const ethHeaderLen = 14

// ErrShortPacket is returned when a packet is too short to decode.
var ErrShortPacket = errors.New("dataplane: short packet")

// Ethernet is a decoded Ethernet frame. VLANTag is nil for untagged frames.
type Ethernet struct {
	Dst       netaddr.MAC
	Src       netaddr.MAC
	VLAN      uint16 // 12-bit VLAN id; valid only if Tagged
	Priority  uint8  // 3-bit 802.1p priority; valid only if Tagged
	Tagged    bool
	EtherType uint16
	Payload   []byte
}

// Marshal encodes the frame.
func (e *Ethernet) Marshal() []byte {
	size := ethHeaderLen + len(e.Payload)
	if e.Tagged {
		size += 4
	}
	b := make([]byte, 0, size)
	b = append(b, e.Dst[:]...)
	b = append(b, e.Src[:]...)
	if e.Tagged {
		b = binary.BigEndian.AppendUint16(b, EtherTypeVLAN)
		tci := uint16(e.Priority)<<13 | e.VLAN&0x0fff
		b = binary.BigEndian.AppendUint16(b, tci)
	}
	b = binary.BigEndian.AppendUint16(b, e.EtherType)
	b = append(b, e.Payload...)
	return b
}

// UnmarshalEthernet decodes an Ethernet frame, handling one optional 802.1Q
// tag. The returned Payload aliases data.
func UnmarshalEthernet(data []byte) (*Ethernet, error) {
	if len(data) < ethHeaderLen {
		return nil, ErrShortPacket
	}
	var e Ethernet
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	et := binary.BigEndian.Uint16(data[12:14])
	rest := data[14:]
	if et == EtherTypeVLAN {
		if len(rest) < 4 {
			return nil, ErrShortPacket
		}
		tci := binary.BigEndian.Uint16(rest[0:2])
		e.Tagged = true
		e.Priority = uint8(tci >> 13)
		e.VLAN = tci & 0x0fff
		et = binary.BigEndian.Uint16(rest[2:4])
		rest = rest[4:]
	}
	e.EtherType = et
	e.Payload = rest
	return &e, nil
}

// ARP opcodes.
const (
	ARPOpRequest uint16 = 1
	ARPOpReply   uint16 = 2
)

// arpLen is the size of an Ethernet/IPv4 ARP packet.
const arpLen = 28

// ARP is an Ethernet/IPv4 ARP packet.
type ARP struct {
	Op        uint16
	SenderMAC netaddr.MAC
	SenderIP  netaddr.IPv4
	TargetMAC netaddr.MAC
	TargetIP  netaddr.IPv4
}

// Marshal encodes the ARP packet.
func (a *ARP) Marshal() []byte {
	b := make([]byte, 0, arpLen)
	b = binary.BigEndian.AppendUint16(b, 1) // hardware type: Ethernet
	b = binary.BigEndian.AppendUint16(b, EtherTypeIPv4)
	b = append(b, 6, 4) // address lengths
	b = binary.BigEndian.AppendUint16(b, a.Op)
	b = append(b, a.SenderMAC[:]...)
	b = append(b, a.SenderIP[:]...)
	b = append(b, a.TargetMAC[:]...)
	b = append(b, a.TargetIP[:]...)
	return b
}

// UnmarshalARP decodes an ARP packet.
func UnmarshalARP(data []byte) (*ARP, error) {
	if len(data) < arpLen {
		return nil, ErrShortPacket
	}
	var a ARP
	a.Op = binary.BigEndian.Uint16(data[6:8])
	copy(a.SenderMAC[:], data[8:14])
	copy(a.SenderIP[:], data[14:18])
	copy(a.TargetMAC[:], data[18:24])
	copy(a.TargetIP[:], data[24:28])
	return &a, nil
}

// ipv4HeaderLen is the size of an IPv4 header without options.
const ipv4HeaderLen = 20

// IPv4 is a decoded IPv4 packet (no options).
type IPv4 struct {
	TOS      uint8
	ID       uint16
	TTL      uint8
	Protocol uint8
	Src      netaddr.IPv4
	Dst      netaddr.IPv4
	Payload  []byte
}

// Marshal encodes the packet with a correct header checksum.
func (p *IPv4) Marshal() []byte {
	totalLen := ipv4HeaderLen + len(p.Payload)
	b := make([]byte, ipv4HeaderLen, totalLen)
	b[0] = 0x45 // version 4, IHL 5
	b[1] = p.TOS
	binary.BigEndian.PutUint16(b[2:4], uint16(totalLen))
	binary.BigEndian.PutUint16(b[4:6], p.ID)
	// no flags/fragmentation
	b[8] = p.TTL
	b[9] = p.Protocol
	copy(b[12:16], p.Src[:])
	copy(b[16:20], p.Dst[:])
	binary.BigEndian.PutUint16(b[10:12], Checksum(b))
	return append(b, p.Payload...)
}

// UnmarshalIPv4 decodes an IPv4 packet and verifies the header checksum.
// The returned Payload aliases data.
func UnmarshalIPv4(data []byte) (*IPv4, error) {
	if len(data) < ipv4HeaderLen {
		return nil, ErrShortPacket
	}
	if data[0]>>4 != 4 {
		return nil, fmt.Errorf("dataplane: not IPv4 (version %d)", data[0]>>4)
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < ipv4HeaderLen || len(data) < ihl {
		return nil, ErrShortPacket
	}
	if Checksum(data[:ihl]) != 0 {
		return nil, errors.New("dataplane: bad IPv4 header checksum")
	}
	totalLen := int(binary.BigEndian.Uint16(data[2:4]))
	if totalLen < ihl || totalLen > len(data) {
		return nil, ErrShortPacket
	}
	var p IPv4
	p.TOS = data[1]
	p.ID = binary.BigEndian.Uint16(data[4:6])
	p.TTL = data[8]
	p.Protocol = data[9]
	copy(p.Src[:], data[12:16])
	copy(p.Dst[:], data[16:20])
	p.Payload = data[ihl:totalLen]
	return &p, nil
}

// Checksum computes the RFC 1071 internet checksum of data. A buffer whose
// checksum field is filled in correctly sums to zero.
func Checksum(data []byte) uint16 {
	var sum uint32
	for len(data) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(data))
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint32(data[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderChecksum seeds the transport checksum with the IPv4
// pseudo-header.
func pseudoHeaderChecksum(src, dst netaddr.IPv4, proto uint8, length int) uint32 {
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(src[0:2]))
	sum += uint32(binary.BigEndian.Uint16(src[2:4]))
	sum += uint32(binary.BigEndian.Uint16(dst[0:2]))
	sum += uint32(binary.BigEndian.Uint16(dst[2:4]))
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// transportChecksum computes the UDP/TCP checksum over the pseudo-header and
// segment. The segment's checksum field must be zeroed by the caller.
func transportChecksum(src, dst netaddr.IPv4, proto uint8, segment []byte) uint16 {
	sum := pseudoHeaderChecksum(src, dst, proto, len(segment))
	for len(segment) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(segment))
		segment = segment[2:]
	}
	if len(segment) == 1 {
		sum += uint32(segment[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
