package dataplane

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"attain/internal/clock"
	"attain/internal/netaddr"
)

// DefaultARPTimeout bounds how long a send waits for ARP resolution.
const DefaultARPTimeout = 2 * time.Second

// ErrARPTimeout is returned when address resolution fails.
var ErrARPTimeout = errors.New("dataplane: ARP resolution timed out")

// ErrPingTimeout is returned when an ICMP echo reply does not arrive.
var ErrPingTimeout = errors.New("dataplane: ping timed out")

// UDPHandler consumes an inbound UDP datagram.
type UDPHandler func(src netaddr.IPv4, dgram *UDP)

// TCPHandler consumes an inbound TCP segment.
type TCPHandler func(src netaddr.IPv4, seg *TCP)

// HostStats counts host interface activity.
type HostStats struct {
	TxFrames  uint64
	RxFrames  uint64
	TxBytes   uint64
	RxBytes   uint64
	RxDropped uint64
}

// Host is a simulated end host with a single interface. It resolves IPv4
// next hops via ARP, answers ICMP echo, and demultiplexes UDP and TCP to
// registered handlers. Frames leave through the transmit function installed
// with AttachOutput and arrive via Input.
type Host struct {
	name string
	mac  netaddr.MAC
	ip   netaddr.IPv4
	clk  clock.Clock

	// ARPTimeout bounds address resolution; set before first use.
	ARPTimeout time.Duration

	mu       sync.Mutex
	out      func([]byte)
	arpTable map[netaddr.IPv4]netaddr.MAC
	arpWait  map[netaddr.IPv4][]chan netaddr.MAC
	pingWait map[uint32]chan struct{}
	udp      map[uint16]UDPHandler
	tcp      map[uint16]TCPHandler
	ident    uint16
	pingSeq  uint16
	ipID     uint16
	stats    HostStats
}

// NewHost creates a host named name with the given addresses.
func NewHost(name string, mac netaddr.MAC, ip netaddr.IPv4, clk clock.Clock) *Host {
	return &Host{
		name:       name,
		mac:        mac,
		ip:         ip,
		clk:        clk,
		ARPTimeout: DefaultARPTimeout,
		arpTable:   make(map[netaddr.IPv4]netaddr.MAC),
		arpWait:    make(map[netaddr.IPv4][]chan netaddr.MAC),
		pingWait:   make(map[uint32]chan struct{}),
		udp:        make(map[uint16]UDPHandler),
		tcp:        make(map[uint16]TCPHandler),
		ident:      uint16(mac[4])<<8 | uint16(mac[5]),
	}
}

// Name returns the host's name.
func (h *Host) Name() string { return h.name }

// MAC returns the host's hardware address.
func (h *Host) MAC() netaddr.MAC { return h.mac }

// IP returns the host's IPv4 address.
func (h *Host) IP() netaddr.IPv4 { return h.ip }

// Stats returns a snapshot of the interface counters.
func (h *Host) Stats() HostStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// AttachOutput installs the frame transmit function. The function must not
// block indefinitely.
func (h *Host) AttachOutput(out func([]byte)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.out = out
}

// HandleUDP registers a handler for datagrams to the given port.
func (h *Host) HandleUDP(port uint16, fn UDPHandler) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.udp[port] = fn
}

// HandleTCP registers a handler for segments to the given port.
func (h *Host) HandleTCP(port uint16, fn TCPHandler) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.tcp[port] = fn
}

// UnhandleTCP removes a TCP port handler.
func (h *Host) UnhandleTCP(port uint16) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.tcp, port)
}

// transmit sends a raw frame, counting it.
func (h *Host) transmit(frame []byte) {
	h.mu.Lock()
	out := h.out
	h.stats.TxFrames++
	h.stats.TxBytes += uint64(len(frame))
	h.mu.Unlock()
	if out != nil {
		out(frame)
	}
}

// Input delivers a received frame to the host stack. It is safe to call
// from any goroutine.
func (h *Host) Input(frame []byte) {
	h.mu.Lock()
	h.stats.RxFrames++
	h.stats.RxBytes += uint64(len(frame))
	h.mu.Unlock()

	eth, err := UnmarshalEthernet(frame)
	if err != nil {
		h.drop()
		return
	}
	if eth.Dst != h.mac && !eth.Dst.IsBroadcast() {
		h.drop()
		return
	}
	switch eth.EtherType {
	case EtherTypeARP:
		h.inputARP(eth)
	case EtherTypeIPv4:
		h.inputIPv4(eth)
	default:
		h.drop()
	}
}

func (h *Host) drop() {
	h.mu.Lock()
	h.stats.RxDropped++
	h.mu.Unlock()
}

func (h *Host) inputARP(eth *Ethernet) {
	arp, err := UnmarshalARP(eth.Payload)
	if err != nil {
		h.drop()
		return
	}
	// Learn the sender mapping opportunistically and wake waiters.
	h.mu.Lock()
	h.arpTable[arp.SenderIP] = arp.SenderMAC
	waiters := h.arpWait[arp.SenderIP]
	delete(h.arpWait, arp.SenderIP)
	h.mu.Unlock()
	for _, ch := range waiters {
		ch <- arp.SenderMAC
	}

	if arp.Op == ARPOpRequest && arp.TargetIP == h.ip {
		reply := &ARP{
			Op:        ARPOpReply,
			SenderMAC: h.mac,
			SenderIP:  h.ip,
			TargetMAC: arp.SenderMAC,
			TargetIP:  arp.SenderIP,
		}
		h.transmit((&Ethernet{
			Dst: arp.SenderMAC, Src: h.mac,
			EtherType: EtherTypeARP, Payload: reply.Marshal(),
		}).Marshal())
	}
}

func (h *Host) inputIPv4(eth *Ethernet) {
	ip, err := UnmarshalIPv4(eth.Payload)
	if err != nil || ip.Dst != h.ip {
		h.drop()
		return
	}
	switch ip.Protocol {
	case ProtoICMP:
		h.inputICMP(ip)
	case ProtoUDP:
		dgram, err := UnmarshalUDP(ip.Src, ip.Dst, ip.Payload)
		if err != nil {
			h.drop()
			return
		}
		h.mu.Lock()
		fn := h.udp[dgram.DstPort]
		h.mu.Unlock()
		if fn == nil {
			h.drop()
			return
		}
		fn(ip.Src, dgram)
	case ProtoTCP:
		seg, err := UnmarshalTCP(ip.Src, ip.Dst, ip.Payload)
		if err != nil {
			h.drop()
			return
		}
		h.mu.Lock()
		fn := h.tcp[seg.DstPort]
		h.mu.Unlock()
		if fn == nil {
			h.drop()
			return
		}
		fn(ip.Src, seg)
	default:
		h.drop()
	}
}

func (h *Host) inputICMP(ip *IPv4) {
	echo, err := UnmarshalICMPEcho(ip.Payload)
	if err != nil {
		h.drop()
		return
	}
	if echo.IsRequest {
		reply := &ICMPEcho{Ident: echo.Ident, Seq: echo.Seq, Payload: echo.Payload}
		// Best effort: the requester's MAC is in our ARP table from the
		// request's trip, or resolvable; avoid blocking the input path.
		h.mu.Lock()
		dstMAC, ok := h.arpTable[ip.Src]
		h.mu.Unlock()
		if !ok {
			// Fall back to resolving in a goroutine so input never blocks.
			go func() {
				if err := h.sendIPv4(ip.Src, ProtoICMP, reply.Marshal()); err != nil {
					h.drop()
				}
			}()
			return
		}
		h.transmitIPv4To(dstMAC, ip.Src, ProtoICMP, reply.Marshal())
		return
	}
	// Echo reply: wake the matching pinger.
	key := uint32(echo.Ident)<<16 | uint32(echo.Seq)
	h.mu.Lock()
	ch := h.pingWait[key]
	delete(h.pingWait, key)
	h.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// Resolve returns the MAC address for ip, performing ARP if necessary.
func (h *Host) Resolve(ip netaddr.IPv4) (netaddr.MAC, error) {
	h.mu.Lock()
	if mac, ok := h.arpTable[ip]; ok {
		h.mu.Unlock()
		return mac, nil
	}
	ch := make(chan netaddr.MAC, 1)
	h.arpWait[ip] = append(h.arpWait[ip], ch)
	timeout := h.ARPTimeout
	h.mu.Unlock()

	req := &ARP{
		Op:        ARPOpRequest,
		SenderMAC: h.mac,
		SenderIP:  h.ip,
		TargetIP:  ip,
	}
	h.transmit((&Ethernet{
		Dst: netaddr.Broadcast, Src: h.mac,
		EtherType: EtherTypeARP, Payload: req.Marshal(),
	}).Marshal())

	select {
	case mac := <-ch:
		return mac, nil
	case <-h.clk.After(timeout):
		h.mu.Lock()
		waiters := h.arpWait[ip]
		for i, w := range waiters {
			if w == ch {
				h.arpWait[ip] = append(waiters[:i], waiters[i+1:]...)
				break
			}
		}
		h.mu.Unlock()
		// A reply may have raced the timeout.
		select {
		case mac := <-ch:
			return mac, nil
		default:
		}
		return netaddr.MAC{}, fmt.Errorf("%w (host %s resolving %s)", ErrARPTimeout, h.name, ip)
	}
}

// transmitIPv4To sends an IPv4 packet to a known next-hop MAC.
func (h *Host) transmitIPv4To(dstMAC netaddr.MAC, dst netaddr.IPv4, proto uint8, payload []byte) {
	h.mu.Lock()
	h.ipID++
	id := h.ipID
	h.mu.Unlock()
	pkt := &IPv4{ID: id, TTL: 64, Protocol: proto, Src: h.ip, Dst: dst, Payload: payload}
	h.transmit((&Ethernet{
		Dst: dstMAC, Src: h.mac,
		EtherType: EtherTypeIPv4, Payload: pkt.Marshal(),
	}).Marshal())
}

// sendIPv4 resolves dst and transmits an IPv4 packet.
func (h *Host) sendIPv4(dst netaddr.IPv4, proto uint8, payload []byte) error {
	mac, err := h.Resolve(dst)
	if err != nil {
		return err
	}
	h.transmitIPv4To(mac, dst, proto, payload)
	return nil
}

// SendUDP sends one UDP datagram to dst.
func (h *Host) SendUDP(dst netaddr.IPv4, srcPort, dstPort uint16, payload []byte) error {
	dgram := &UDP{SrcPort: srcPort, DstPort: dstPort, Payload: payload}
	return h.sendIPv4(dst, ProtoUDP, dgram.Marshal(h.ip, dst))
}

// SendTCP sends one TCP segment to dst.
func (h *Host) SendTCP(dst netaddr.IPv4, seg *TCP) error {
	return h.sendIPv4(dst, ProtoTCP, seg.Marshal(h.ip, dst))
}

// Ping sends one ICMP echo request to dst and waits up to timeout for the
// reply, returning the round-trip time.
func (h *Host) Ping(dst netaddr.IPv4, timeout time.Duration) (time.Duration, error) {
	h.mu.Lock()
	h.pingSeq++
	seq := h.pingSeq
	key := uint32(h.ident)<<16 | uint32(seq)
	ch := make(chan struct{})
	h.pingWait[key] = ch
	h.mu.Unlock()

	cleanup := func() {
		h.mu.Lock()
		delete(h.pingWait, key)
		h.mu.Unlock()
	}

	start := h.clk.Now()
	echo := &ICMPEcho{IsRequest: true, Ident: h.ident, Seq: seq, Payload: []byte("attain-ping")}
	if err := h.sendIPv4(dst, ProtoICMP, echo.Marshal()); err != nil {
		cleanup()
		return 0, err
	}
	select {
	case <-ch:
		return h.clk.Now().Sub(start), nil
	case <-h.clk.After(timeout):
		cleanup()
		return 0, fmt.Errorf("%w (host %s pinging %s seq %d)", ErrPingTimeout, h.name, dst, seq)
	}
}
