package dataplane

import (
	"encoding/binary"

	"attain/internal/openflow"
)

// OFPVLANNone is the OpenFlow 1.0 dl_vlan value for untagged frames.
const OFPVLANNone uint16 = 0xffff

// Fields parses a raw Ethernet frame into the OpenFlow 1.0 header-field
// view used for flow matching, per the spec's packet parsing rules:
// dl_vlan is OFPVLANNone for untagged frames; for ICMP, tp_src/tp_dst carry
// the ICMP type and code.
func Fields(inPort uint16, frame []byte) (openflow.FieldView, error) {
	var f openflow.FieldView
	f.InPort = inPort
	f.DLVLAN = OFPVLANNone

	eth, err := UnmarshalEthernet(frame)
	if err != nil {
		return f, err
	}
	f.DLSrc = eth.Src
	f.DLDst = eth.Dst
	f.DLType = eth.EtherType
	if eth.Tagged {
		f.DLVLAN = eth.VLAN
		f.DLVLANPCP = eth.Priority
	}

	switch eth.EtherType {
	case EtherTypeARP:
		arp, err := UnmarshalARP(eth.Payload)
		if err != nil {
			return f, err
		}
		// OF 1.0 reuses nw_src/nw_dst/nw_proto for ARP SPA/TPA/opcode.
		f.NWSrc = arp.SenderIP
		f.NWDst = arp.TargetIP
		f.NWProto = uint8(arp.Op)
	case EtherTypeIPv4:
		// Parse headers leniently: PACKET_IN payloads are truncated to
		// miss_send_len, so the packet body (and hence the IP total
		// length) may extend past the available bytes. Only the headers
		// are needed for matching.
		ip := eth.Payload
		if len(ip) < ipv4HeaderLen || ip[0]>>4 != 4 {
			return f, ErrShortPacket
		}
		ihl := int(ip[0]&0x0f) * 4
		if ihl < ipv4HeaderLen || len(ip) < ihl {
			return f, ErrShortPacket
		}
		f.NWTOS = ip[1]
		f.NWProto = ip[9]
		copy(f.NWSrc[:], ip[12:16])
		copy(f.NWDst[:], ip[16:20])
		l4 := ip[ihl:]
		switch f.NWProto {
		case ProtoTCP, ProtoUDP:
			if len(l4) >= 4 {
				f.TPSrc = binary.BigEndian.Uint16(l4[0:2])
				f.TPDst = binary.BigEndian.Uint16(l4[2:4])
			}
		case ProtoICMP:
			if len(l4) >= 2 {
				f.TPSrc = uint16(l4[0]) // ICMP type
				f.TPDst = uint16(l4[1]) // ICMP code
			}
		}
	}
	return f, nil
}
