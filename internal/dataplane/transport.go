package dataplane

import (
	"encoding/binary"
	"errors"

	"attain/internal/netaddr"
)

// udpHeaderLen is the UDP header size.
const udpHeaderLen = 8

// UDP is a decoded UDP datagram.
type UDP struct {
	SrcPort uint16
	DstPort uint16
	Payload []byte
}

// Marshal encodes the datagram, computing the checksum over the
// pseudo-header for the given IP endpoints.
func (u *UDP) Marshal(src, dst netaddr.IPv4) []byte {
	length := udpHeaderLen + len(u.Payload)
	b := make([]byte, udpHeaderLen, length)
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], uint16(length))
	b = append(b, u.Payload...)
	cs := transportChecksum(src, dst, ProtoUDP, b)
	if cs == 0 {
		cs = 0xffff // RFC 768: transmitted zero means "no checksum"
	}
	binary.BigEndian.PutUint16(b[6:8], cs)
	return b
}

// UnmarshalUDP decodes a UDP datagram, verifying the checksum when present.
func UnmarshalUDP(src, dst netaddr.IPv4, data []byte) (*UDP, error) {
	if len(data) < udpHeaderLen {
		return nil, ErrShortPacket
	}
	length := int(binary.BigEndian.Uint16(data[4:6]))
	if length < udpHeaderLen || length > len(data) {
		return nil, ErrShortPacket
	}
	data = data[:length]
	if binary.BigEndian.Uint16(data[6:8]) != 0 {
		if transportChecksum(src, dst, ProtoUDP, data) != 0 {
			return nil, errors.New("dataplane: bad UDP checksum")
		}
	}
	var u UDP
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Payload = data[udpHeaderLen:]
	return &u, nil
}

// TCP flag bits.
const (
	TCPFin uint8 = 1 << 0
	TCPSyn uint8 = 1 << 1
	TCPRst uint8 = 1 << 2
	TCPPsh uint8 = 1 << 3
	TCPAck uint8 = 1 << 4
)

// tcpHeaderLen is the TCP header size without options.
const tcpHeaderLen = 20

// TCP is a decoded TCP segment (no options).
type TCP struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
	Payload []byte
}

// Marshal encodes the segment, computing the checksum over the
// pseudo-header for the given IP endpoints.
func (t *TCP) Marshal(src, dst netaddr.IPv4) []byte {
	b := make([]byte, tcpHeaderLen, tcpHeaderLen+len(t.Payload))
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[12] = 5 << 4 // data offset: 5 words
	b[13] = t.Flags
	binary.BigEndian.PutUint16(b[14:16], t.Window)
	b = append(b, t.Payload...)
	binary.BigEndian.PutUint16(b[16:18], transportChecksum(src, dst, ProtoTCP, b))
	return b
}

// UnmarshalTCP decodes a TCP segment, verifying the checksum.
func UnmarshalTCP(src, dst netaddr.IPv4, data []byte) (*TCP, error) {
	if len(data) < tcpHeaderLen {
		return nil, ErrShortPacket
	}
	offset := int(data[12]>>4) * 4
	if offset < tcpHeaderLen || len(data) < offset {
		return nil, ErrShortPacket
	}
	if transportChecksum(src, dst, ProtoTCP, data) != 0 {
		return nil, errors.New("dataplane: bad TCP checksum")
	}
	var t TCP
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.Flags = data[13]
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Payload = data[offset:]
	return &t, nil
}

// ICMP types used by the simulator.
const (
	ICMPTypeEchoReply   uint8 = 0
	ICMPTypeEchoRequest uint8 = 8
)

// icmpHeaderLen is the ICMP echo header size.
const icmpHeaderLen = 8

// ICMPEcho is an ICMP echo request or reply.
type ICMPEcho struct {
	IsRequest bool
	Ident     uint16
	Seq       uint16
	Payload   []byte
}

// Marshal encodes the message with a correct checksum.
func (m *ICMPEcho) Marshal() []byte {
	b := make([]byte, icmpHeaderLen, icmpHeaderLen+len(m.Payload))
	if m.IsRequest {
		b[0] = ICMPTypeEchoRequest
	} else {
		b[0] = ICMPTypeEchoReply
	}
	binary.BigEndian.PutUint16(b[4:6], m.Ident)
	binary.BigEndian.PutUint16(b[6:8], m.Seq)
	b = append(b, m.Payload...)
	binary.BigEndian.PutUint16(b[2:4], Checksum(b))
	return b
}

// UnmarshalICMPEcho decodes an ICMP echo message, verifying the checksum.
// Non-echo ICMP types return an error.
func UnmarshalICMPEcho(data []byte) (*ICMPEcho, error) {
	if len(data) < icmpHeaderLen {
		return nil, ErrShortPacket
	}
	if Checksum(data) != 0 {
		return nil, errors.New("dataplane: bad ICMP checksum")
	}
	var m ICMPEcho
	switch data[0] {
	case ICMPTypeEchoRequest:
		m.IsRequest = true
	case ICMPTypeEchoReply:
		m.IsRequest = false
	default:
		return nil, errors.New("dataplane: unsupported ICMP type")
	}
	m.Ident = binary.BigEndian.Uint16(data[4:6])
	m.Seq = binary.BigEndian.Uint16(data[6:8])
	m.Payload = data[icmpHeaderLen:]
	return &m, nil
}
