package netaddr

import (
	"testing"
	"testing/quick"
)

func TestMACStringRoundTrip(t *testing.T) {
	tests := []string{
		"00:00:00:00:00:00",
		"0a:00:00:00:00:01",
		"ff:ff:ff:ff:ff:ff",
		"de:ad:be:ef:01:23",
	}
	for _, s := range tests {
		m, err := ParseMAC(s)
		if err != nil {
			t.Fatalf("ParseMAC(%q): %v", s, err)
		}
		if got := m.String(); got != s {
			t.Errorf("ParseMAC(%q).String() = %q", s, got)
		}
	}
}

func TestParseMACAcceptsDashes(t *testing.T) {
	m, err := ParseMAC("0a-00-00-00-00-01")
	if err != nil {
		t.Fatal(err)
	}
	if m != (MAC{0x0a, 0, 0, 0, 0, 1}) {
		t.Errorf("parsed %v", m)
	}
}

func TestParseMACErrors(t *testing.T) {
	for _, s := range []string{"", "0a:00:00:00:00", "0a:00:00:00:00:01:02", "zz:00:00:00:00:01", "100:00:00:00:00:01"} {
		if _, err := ParseMAC(s); err == nil {
			t.Errorf("ParseMAC(%q) succeeded", s)
		}
	}
}

func TestMACPredicates(t *testing.T) {
	if !Broadcast.IsBroadcast() || !Broadcast.IsMulticast() {
		t.Error("broadcast predicates wrong")
	}
	uni := MustParseMAC("0a:00:00:00:00:01")
	if uni.IsBroadcast() || uni.IsMulticast() || uni.IsZero() {
		t.Error("unicast predicates wrong")
	}
	multi := MustParseMAC("01:00:5e:00:00:01")
	if !multi.IsMulticast() || multi.IsBroadcast() {
		t.Error("multicast predicates wrong")
	}
	if !(MAC{}).IsZero() {
		t.Error("zero MAC not IsZero")
	}
}

func TestIPv4StringRoundTrip(t *testing.T) {
	for _, s := range []string{"0.0.0.0", "10.0.0.1", "255.255.255.255", "192.168.1.254"} {
		ip, err := ParseIPv4(s)
		if err != nil {
			t.Fatalf("ParseIPv4(%q): %v", s, err)
		}
		if got := ip.String(); got != s {
			t.Errorf("ParseIPv4(%q).String() = %q", s, got)
		}
	}
}

func TestParseIPv4Errors(t *testing.T) {
	for _, s := range []string{"", "10.0.0", "10.0.0.1.2", "10.0.0.256", "a.b.c.d"} {
		if _, err := ParseIPv4(s); err == nil {
			t.Errorf("ParseIPv4(%q) succeeded", s)
		}
	}
}

func TestIPv4Uint32RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		return IPv4FromUint32(v).Uint32() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIPv4MaskBits(t *testing.T) {
	ip := MustParseIPv4("10.1.2.3")
	tests := []struct {
		bits int
		want string
	}{
		{32, "10.1.2.3"},
		{24, "10.1.2.0"},
		{16, "10.1.0.0"},
		{8, "10.0.0.0"},
		{0, "0.0.0.0"},
		{-1, "0.0.0.0"},
		{40, "10.1.2.3"},
	}
	for _, tc := range tests {
		if got := ip.MaskBits(tc.bits).String(); got != tc.want {
			t.Errorf("MaskBits(%d) = %s, want %s", tc.bits, got, tc.want)
		}
	}
}

func TestIPv4Predicates(t *testing.T) {
	if !(IPv4{}).IsZero() {
		t.Error("zero IP not IsZero")
	}
	if !MustParseIPv4("255.255.255.255").IsBroadcast() {
		t.Error("broadcast IP not IsBroadcast")
	}
	if MustParseIPv4("10.0.0.1").IsBroadcast() {
		t.Error("unicast IP IsBroadcast")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseMAC of invalid input did not panic")
		}
	}()
	MustParseMAC("bogus")
}
