package netaddr

import (
	"errors"
	"fmt"
)

// ErrExhausted is returned by the allocators when their address space (or
// configured limit) is used up.
var ErrExhausted = errors.New("netaddr: address space exhausted")

// splitmix64 advances a splitmix64 state and returns the next value in the
// stream. It is the standard 64-bit mixing generator: every seed yields a
// full-period, well-distributed sequence, so allocators derived from
// different seeds hand out disjoint-looking blocks deterministically.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DefaultDPIDLimit caps a DPIDAllocator when no explicit limit is set.
// 2^20 datapaths is far beyond any single-process fabric.
const DefaultDPIDLimit = 1 << 20

// DPIDAllocator hands out unique, non-zero OpenFlow datapath ids from a
// seeded deterministic stream. The same seed always yields the same DPID
// sequence, and every returned id is collision-checked against the set
// already handed out (including ids registered with Reserve), so topology
// generators never produce duplicate datapaths.
type DPIDAllocator struct {
	state uint64
	used  map[uint64]struct{}
	limit int
}

// NewDPIDAllocator returns an allocator whose sequence is determined by
// seed. limit caps the number of allocations; 0 means DefaultDPIDLimit.
func NewDPIDAllocator(seed int64, limit int) *DPIDAllocator {
	if limit <= 0 {
		limit = DefaultDPIDLimit
	}
	return &DPIDAllocator{
		state: uint64(seed) ^ 0xd1b54a32d192ed03,
		used:  make(map[uint64]struct{}),
		limit: limit,
	}
}

// Reserve marks a DPID as taken so Alloc never returns it. Reserving an
// already-reserved id is a no-op. Reserved ids count against the limit.
func (a *DPIDAllocator) Reserve(dpid uint64) {
	a.used[dpid] = struct{}{}
}

// Alloc returns the next unique DPID, masked to 48 bits (the conventional
// MAC-derived datapath range) and never zero. It fails with ErrExhausted
// once the allocator's limit is reached.
func (a *DPIDAllocator) Alloc() (uint64, error) {
	if len(a.used) >= a.limit {
		return 0, fmt.Errorf("%w: %d DPIDs allocated", ErrExhausted, len(a.used))
	}
	for {
		id := splitmix64(&a.state) & 0xffff_ffff_ffff
		if id == 0 {
			continue
		}
		if _, dup := a.used[id]; dup {
			continue
		}
		a.used[id] = struct{}{}
		return id, nil
	}
}

// Allocated reports how many ids (allocated plus reserved) are in use.
func (a *DPIDAllocator) Allocated() int { return len(a.used) }

// macBlockSize is the per-block MAC space: the low 3 octets, giving 2^24
// addresses per seeded block.
const macBlockSize = 1 << 24

// MACAllocator hands out unique unicast MAC addresses from a seeded
// locally-administered block. The top three octets are derived from the
// seed (with the locally-administered bit set and the multicast bit
// clear), the low three count up, so one allocator covers 2^24 hosts and
// two allocators with different seeds draw from different blocks. Every
// address is collision-checked against Reserve'd ones.
type MACAllocator struct {
	prefix [3]byte
	next   uint32
	space  uint32
	used   map[MAC]struct{}
}

// NewMACAllocator returns a MAC allocator for the seed's block.
func NewMACAllocator(seed int64) *MACAllocator {
	state := uint64(seed) ^ 0x9492bca84b0bd7b5
	v := splitmix64(&state)
	return &MACAllocator{
		// Locally administered (bit 1 set), unicast (bit 0 clear).
		prefix: [3]byte{byte(v)&0xfe | 0x02, byte(v >> 8), byte(v >> 16)},
		space:  macBlockSize,
		used:   make(map[MAC]struct{}),
	}
}

// Reserve marks an address as taken so Alloc never returns it.
func (a *MACAllocator) Reserve(m MAC) {
	a.used[m] = struct{}{}
}

// Alloc returns the next unique MAC in the block, failing with
// ErrExhausted when the block's 2^24 addresses are used up.
func (a *MACAllocator) Alloc() (MAC, error) {
	for a.next < a.space {
		n := a.next
		a.next++
		m := MAC{a.prefix[0], a.prefix[1], a.prefix[2], byte(n >> 16), byte(n >> 8), byte(n)}
		if _, dup := a.used[m]; dup {
			continue
		}
		a.used[m] = struct{}{}
		return m, nil
	}
	return MAC{}, fmt.Errorf("%w: MAC block %02x:%02x:%02x used up",
		ErrExhausted, a.prefix[0], a.prefix[1], a.prefix[2])
}

// Allocated reports how many addresses (allocated plus reserved) are in
// use.
func (a *MACAllocator) Allocated() int { return len(a.used) }

// IPv4Allocator hands out sequential host addresses from a /8-style pool
// starting at base, skipping .0 and .255 host octets so every address is a
// plain unicast host address. The zero value is not usable; construct with
// NewIPv4Allocator.
type IPv4Allocator struct {
	next uint32
	end  uint32
}

// NewIPv4Allocator returns an allocator that walks base+1, base+2, ...
// within base's /8.
func NewIPv4Allocator(base IPv4) *IPv4Allocator {
	start := base.Uint32()
	return &IPv4Allocator{next: start + 1, end: (start | 0x00ff_ffff) - 1}
}

// Alloc returns the next host address, failing with ErrExhausted at the
// end of the pool.
func (a *IPv4Allocator) Alloc() (IPv4, error) {
	for a.next <= a.end {
		v := a.next
		a.next++
		low := byte(v)
		if low == 0 || low == 255 {
			continue
		}
		return IPv4FromUint32(v), nil
	}
	return IPv4{}, fmt.Errorf("%w: IPv4 pool used up", ErrExhausted)
}
