package netaddr

import (
	"errors"
	"testing"
)

func TestDPIDAllocatorDeterministicAndUnique(t *testing.T) {
	a := NewDPIDAllocator(42, 0)
	b := NewDPIDAllocator(42, 0)
	seen := make(map[uint64]struct{})
	for i := 0; i < 10_000; i++ {
		ida, err := a.Alloc()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		idb, err := b.Alloc()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if ida != idb {
			t.Fatalf("same seed diverged at %d: %#x vs %#x", i, ida, idb)
		}
		if ida == 0 {
			t.Fatalf("allocated zero DPID at %d", i)
		}
		if ida>>48 != 0 {
			t.Fatalf("DPID %#x exceeds 48 bits", ida)
		}
		if _, dup := seen[ida]; dup {
			t.Fatalf("duplicate DPID %#x at %d", ida, i)
		}
		seen[ida] = struct{}{}
	}
	if a.Allocated() != 10_000 {
		t.Fatalf("Allocated = %d, want 10000", a.Allocated())
	}
}

func TestDPIDAllocatorSeedsDiffer(t *testing.T) {
	a, _ := NewDPIDAllocator(1, 0).Alloc()
	b, _ := NewDPIDAllocator(2, 0).Alloc()
	if a == b {
		t.Fatalf("seeds 1 and 2 produced the same first DPID %#x", a)
	}
}

func TestDPIDAllocatorReserveExcludes(t *testing.T) {
	probe := NewDPIDAllocator(7, 0)
	first, _ := probe.Alloc()

	a := NewDPIDAllocator(7, 0)
	a.Reserve(first)
	got, err := a.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if got == first {
		t.Fatalf("Alloc returned reserved DPID %#x", first)
	}
}

func TestDPIDAllocatorExhaustion(t *testing.T) {
	a := NewDPIDAllocator(3, 4)
	for i := 0; i < 4; i++ {
		if _, err := a.Alloc(); err != nil {
			t.Fatalf("alloc %d failed before limit: %v", i, err)
		}
	}
	if _, err := a.Alloc(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted past limit, got %v", err)
	}
}

func TestMACAllocatorUniqueUnicastLocal(t *testing.T) {
	a := NewMACAllocator(42)
	b := NewMACAllocator(42)
	seen := make(map[MAC]struct{})
	for i := 0; i < 10_000; i++ {
		ma, err := a.Alloc()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		mb, _ := b.Alloc()
		if ma != mb {
			t.Fatalf("same seed diverged at %d: %s vs %s", i, ma, mb)
		}
		if ma[0]&0x01 != 0 {
			t.Fatalf("multicast bit set on %s", ma)
		}
		if ma[0]&0x02 == 0 {
			t.Fatalf("locally-administered bit clear on %s", ma)
		}
		if _, dup := seen[ma]; dup {
			t.Fatalf("duplicate MAC %s at %d", ma, i)
		}
		seen[ma] = struct{}{}
	}
}

func TestMACAllocatorBlocksDisjointPrefix(t *testing.T) {
	a, _ := NewMACAllocator(1).Alloc()
	b, _ := NewMACAllocator(2).Alloc()
	if a[0] == b[0] && a[1] == b[1] && a[2] == b[2] {
		t.Fatalf("seeds 1 and 2 landed in the same block: %s vs %s", a, b)
	}
}

func TestMACAllocatorReserveAndExhaustion(t *testing.T) {
	a := NewMACAllocator(9)
	a.space = 4 // shrink the block to make exhaustion testable
	first := MAC{a.prefix[0], a.prefix[1], a.prefix[2], 0, 0, 0}
	a.Reserve(first)
	for i := 0; i < 3; i++ {
		m, err := a.Alloc()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if m == first {
			t.Fatalf("Alloc returned reserved MAC %s", m)
		}
	}
	if _, err := a.Alloc(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
}

func TestIPv4Allocator(t *testing.T) {
	a := NewIPv4Allocator(IPv4{10, 0, 0, 0})
	got, err := a.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if got != (IPv4{10, 0, 0, 1}) {
		t.Fatalf("first = %s, want 10.0.0.1", got)
	}
	// Walk across the .255/.0 boundary: addresses 10.0.0.2 .. 10.0.1.2
	// skip 10.0.0.255 and 10.0.1.0.
	var prev IPv4 = got
	for i := 0; i < 256; i++ {
		ip, err := a.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if ip[3] == 0 || ip[3] == 255 {
			t.Fatalf("allocated network/broadcast-style address %s", ip)
		}
		if ip.Uint32() <= prev.Uint32() {
			t.Fatalf("non-increasing allocation %s after %s", ip, prev)
		}
		prev = ip
	}
}

func TestIPv4AllocatorExhaustion(t *testing.T) {
	a := NewIPv4Allocator(IPv4{10, 0, 0, 0})
	a.end = a.next + 2
	for {
		if _, err := a.Alloc(); err != nil {
			if !errors.Is(err, ErrExhausted) {
				t.Fatalf("want ErrExhausted, got %v", err)
			}
			return
		}
	}
}
