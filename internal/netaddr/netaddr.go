// Package netaddr defines the small value types for link-layer and network-
// layer addresses shared by the OpenFlow codec, the data-plane packet
// codecs, and the ATTAIN system model.
package netaddr

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// Broadcast is the all-ones Ethernet broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String formats the address as colon-separated hex, e.g. "0a:00:00:00:00:01".
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// IsMulticast reports whether the group bit is set (includes broadcast).
func (m MAC) IsMulticast() bool { return m[0]&0x01 != 0 }

// IsZero reports whether m is the all-zero address.
func (m MAC) IsZero() bool { return m == MAC{} }

// ParseMAC parses a colon- or dash-separated hex MAC address.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	parts := strings.FieldsFunc(s, func(r rune) bool { return r == ':' || r == '-' })
	if len(parts) != 6 {
		return m, fmt.Errorf("netaddr: invalid MAC %q", s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 16, 8)
		if err != nil {
			return m, fmt.Errorf("netaddr: invalid MAC %q: %v", s, err)
		}
		m[i] = byte(v)
	}
	return m, nil
}

// MustParseMAC is ParseMAC that panics on error, for fixtures and tests.
func MustParseMAC(s string) MAC {
	m, err := ParseMAC(s)
	if err != nil {
		panic(err)
	}
	return m
}

// IPv4 is a 32-bit IPv4 address.
type IPv4 [4]byte

// String formats the address in dotted-quad notation.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// Uint32 returns the address as a big-endian 32-bit integer.
func (ip IPv4) Uint32() uint32 { return binary.BigEndian.Uint32(ip[:]) }

// IPv4FromUint32 builds an address from a big-endian 32-bit integer.
func IPv4FromUint32(v uint32) IPv4 {
	var ip IPv4
	binary.BigEndian.PutUint32(ip[:], v)
	return ip
}

// IsZero reports whether ip is 0.0.0.0.
func (ip IPv4) IsZero() bool { return ip == IPv4{} }

// IsBroadcast reports whether ip is 255.255.255.255.
func (ip IPv4) IsBroadcast() bool { return ip == IPv4{255, 255, 255, 255} }

// ParseIPv4 parses a dotted-quad IPv4 address.
func ParseIPv4(s string) (IPv4, error) {
	var ip IPv4
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return ip, fmt.Errorf("netaddr: invalid IPv4 %q", s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return ip, fmt.Errorf("netaddr: invalid IPv4 %q: %v", s, err)
		}
		ip[i] = byte(v)
	}
	return ip, nil
}

// MustParseIPv4 is ParseIPv4 that panics on error, for fixtures and tests.
func MustParseIPv4(s string) IPv4 {
	ip, err := ParseIPv4(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// MaskBits returns the address masked to its top n bits (CIDR-style); n is
// clamped to [0, 32]. Used for OpenFlow 1.0 nw_src/nw_dst wildcard matching.
func (ip IPv4) MaskBits(n int) IPv4 {
	if n >= 32 {
		return ip
	}
	if n <= 0 {
		return IPv4{}
	}
	mask := ^uint32(0) << (32 - uint(n))
	return IPv4FromUint32(ip.Uint32() & mask)
}
