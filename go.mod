module attain

go 1.22
