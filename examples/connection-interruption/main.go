// Connection interruption (paper §VII-C, Figure 12): sever the DMZ
// firewall switch's control channel after it asks the controller about
// gateway-to-internal traffic, and compare the fail-safe and fail-secure
// outcomes.
//
// Run with: go run ./examples/connection-interruption [-profile ryu]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"attain/internal/controller"
	"attain/internal/core/compile"
	"attain/internal/experiment"
	"attain/internal/switchsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "connection-interruption:", err)
		os.Exit(1)
	}
}

func run() error {
	profileName := flag.String("profile", "floodlight", "controller profile: floodlight, pox, or ryu")
	flag.Parse()

	var profile controller.Profile
	switch *profileName {
	case "floodlight":
		profile = controller.ProfileFloodlight
	case "pox":
		profile = controller.ProfilePOX
	case "ryu":
		profile = controller.ProfileRyu
	default:
		return fmt.Errorf("unknown profile %q", *profileName)
	}

	prog, err := compile.Compile(
		experiment.EnterpriseSystemDSL,
		experiment.NoTLSAttackerDSL,
		experiment.InterruptionAttackDSL,
	)
	if err != nil {
		return err
	}
	fmt.Println("compiled attack description (Figure 12):")
	fmt.Println(prog.Attack.Describe())
	fmt.Println(prog.Attack.Graph().DOT())

	var results []*experiment.InterruptionResult
	for _, mode := range []switchsim.FailMode{switchsim.FailSafe, switchsim.FailSecure} {
		fmt.Printf("running %s with s2 set to fail-%s...\n", profile, mode)
		res, err := experiment.RunInterruption(experiment.InterruptionConfig{
			Profile:         profile,
			FailMode:        mode,
			TimeScale:       40,
			Settle:          2 * time.Second,
			AccessAttempts:  6,
			AccessInterval:  time.Second,
			TriggerWindow:   25 * time.Second,
			PostTriggerWait: 35 * time.Second,
			EchoInterval:    2 * time.Second,
			EchoTimeout:     6 * time.Second,
		})
		if err != nil {
			return err
		}
		results = append(results, res)
		fmt.Printf("  attack finished in state %s; s2 disconnected: %v\n",
			res.FinalState, res.S2Disconnected)
	}

	fmt.Println()
	fmt.Print(experiment.RenderTableII(results))

	for _, res := range results {
		switch {
		case res.UnauthorizedAccess() && res.FinalState == "sigma3":
			fmt.Printf("\nfail-%s: the DMZ switch reverted to standalone learning and let the\n", res.FailMode)
			fmt.Println("external user reach protected internal hosts (unauthorized increased access)")
		case res.DeniedLegitimate():
			fmt.Printf("\nfail-%s: the DMZ switch stopped admitting new flows, denying service\n", res.FailMode)
			fmt.Println("to legitimate internal users (denial of service)")
		case res.FinalState != "sigma3":
			fmt.Printf("\nfail-%s: rule φ2 never matched this controller's FLOW_MODs (no nw_src\n", res.FailMode)
			fmt.Println("in its match), so the interruption never triggered — the cross-controller")
			fmt.Println("divergence the paper highlights for Ryu")
		}
	}
	return nil
}
