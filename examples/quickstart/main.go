// Quickstart: build the ATTAIN case-study network, interpose the injector
// with the trivial pass-all attack (the paper's Figure 5), send some data
// plane traffic, and inspect what the injector observed.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"attain/internal/clock"
	"attain/internal/controller"
	"attain/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A scaled clock runs the simulation 20x faster than wall time while
	// keeping all virtual durations (latencies, RTTs) consistent.
	clk := clock.NewScaled(20)

	// The testbed builds the paper's Figure 8/9 enterprise network: six
	// hosts, four switches, one controller, and the attack injector
	// proxying every control-plane connection. Attack == nil means the
	// trivial single-state attack that passes every message (Figure 5).
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{
		Profile: controller.ProfileFloodlight,
		Clock:   clk,
	})
	if err != nil {
		return err
	}
	if err := tb.Start(); err != nil {
		return err
	}
	defer tb.Stop()
	if err := tb.WaitConnected(10 * time.Second); err != nil {
		return err
	}
	fmt.Println("all four switches completed their OpenFlow handshake through the injector")

	// Generate some traffic: the workstation h6 pings the web server h1.
	for i := 0; i < 3; i++ {
		rtt, err := tb.Host("h6").Ping(tb.IPOf("h1"), 5*time.Second)
		if err != nil {
			return fmt.Errorf("ping %d: %w", i+1, err)
		}
		fmt.Printf("ping h6 -> h1 seq=%d rtt=%s (virtual)\n", i+1, rtt)
	}

	// The injector logged every control-plane message it proxied.
	fmt.Println("\ncontrol-plane messages observed by the injector:")
	for msgType, n := range tb.Injector.Log().MessageTypeCounts() {
		fmt.Printf("  %-18s %d\n", msgType, n)
	}
	total := tb.Injector.Log().TotalStats()
	fmt.Printf("\ntotal: seen=%d delivered=%d dropped=%d (trivial attack: nothing dropped)\n",
		total.Seen, total.Delivered, total.Dropped)
	fmt.Printf("attack state: %s (single absorbing end state)\n", tb.Injector.CurrentState())
	return nil
}
