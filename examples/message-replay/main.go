// Message replay and reordering (paper §VIII-A): use deque storage to
// capture control-plane messages and re-inject them later — FIFO replay
// with APPEND/SHIFT, LIFO reversal with PREPEND/SHIFT. The example drives
// the injector directly with hand-crafted OpenFlow messages so the replay
// order is plainly visible.
//
// Run with: go run ./examples/message-replay
package main

import (
	"fmt"
	"net"
	"os"
	"time"

	"attain/internal/clock"
	"attain/internal/core/compile"
	"attain/internal/core/inject"
	"attain/internal/core/model"
	"attain/internal/netem"
	"attain/internal/openflow"
)

// replayAttack captures every FLOW_MOD instead of delivering it, then
// releases all captured messages in reverse (stack) order when a
// BARRIER_REQUEST arrives.
const replayAttack = `
attack "reverse-replay" start capture {
  state capture {
    rule hold on (c1,s1) caps notls {
      when msg.type = "FLOW_MOD"
      do store q front; drop          # PREPEND: the deque becomes a stack
    }
    rule release on (c1,s1) caps notls {
      when msg.type = "BARRIER_REQUEST"
      do sendStored q front; sendStored q front; sendStored q front
    }
  }
}
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "message-replay:", err)
		os.Exit(1)
	}
}

func run() error {
	sys := model.Figure3System()
	attacker := model.NewAttackerModel()
	for _, conn := range sys.ControlPlane {
		attacker.Grant(conn, model.AllCapabilities)
	}
	attack, err := compile.CompileAttack(replayAttack, sys)
	if err != nil {
		return err
	}

	tr := netem.NewMemTransport()

	// A bare-bones "controller" that just prints what it receives.
	ln, err := tr.Listen("c1")
	if err != nil {
		return err
	}
	received := make(chan string, 16)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		for {
			hdr, msg, err := openflow.ReadMessage(conn)
			if err != nil {
				return
			}
			desc := hdr.Type.String()
			if fm, ok := msg.(*openflow.FlowMod); ok {
				desc = fmt.Sprintf("%s(priority=%d)", hdr.Type, fm.Priority)
			}
			received <- desc
		}
	}()

	inj, err := inject.New(inject.Config{
		System: sys, Attacker: attacker, Attack: attack,
		Transport: tr, Clock: clock.New(),
	})
	if err != nil {
		return err
	}
	if err := inj.Start(); err != nil {
		return err
	}
	defer inj.Stop()

	// A bare-bones "switch" sends three flow mods, then a barrier.
	conn := model.Conn{Controller: "c1", Switch: "s1"}
	sw, err := tr.Dial(inj.ProxyAddrFor(conn))
	if err != nil {
		return err
	}
	defer sw.Close()
	var _ net.Conn = sw

	fmt.Println("switch sends: FLOW_MOD(1), FLOW_MOD(2), FLOW_MOD(3), BARRIER_REQUEST")
	for prio := uint16(1); prio <= 3; prio++ {
		fm := &openflow.FlowMod{
			Match: openflow.MatchAll(), Priority: prio,
			BufferID: openflow.NoBuffer, OutPort: openflow.PortNone,
		}
		if err := openflow.WriteMessage(sw, uint32(prio), fm); err != nil {
			return err
		}
	}
	if err := openflow.WriteMessage(sw, 99, &openflow.BarrierRequest{}); err != nil {
		return err
	}

	fmt.Println("controller receives (captured flow mods replayed in reverse):")
	timeout := time.After(5 * time.Second)
	for i := 0; i < 4; i++ {
		select {
		case desc := <-received:
			fmt.Printf("  %d: %s\n", i+1, desc)
		case <-timeout:
			return fmt.Errorf("timed out after %d messages", i)
		}
	}
	fmt.Println("\nthe deque acted as a stack (PREPEND + front SHIFT), reversing message order —")
	fmt.Println("swap `store q front` for `store q end` to get FIFO replay instead")
	return nil
}
