// Flow modification suppression (paper §VII-B, Figure 10): compile the
// attack from its DSL description, run it against one controller profile,
// and compare data-plane service against the baseline.
//
// Run with: go run ./examples/flowmod-suppression [-profile pox]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"attain/internal/controller"
	"attain/internal/core/compile"
	"attain/internal/dataplane"
	"attain/internal/experiment"
	"attain/internal/monitor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "flowmod-suppression:", err)
		os.Exit(1)
	}
}

func run() error {
	profileName := flag.String("profile", "floodlight", "controller profile: floodlight, pox, or ryu")
	flag.Parse()

	var profile controller.Profile
	switch *profileName {
	case "floodlight":
		profile = controller.ProfileFloodlight
	case "pox":
		profile = controller.ProfilePOX
	case "ryu":
		profile = controller.ProfileRyu
	default:
		return fmt.Errorf("unknown profile %q", *profileName)
	}

	// Compile the attack description exactly as a practitioner would
	// write it: system model + attacker model + attack states.
	prog, err := compile.Compile(
		experiment.EnterpriseSystemDSL,
		experiment.NoTLSAttackerDSL,
		experiment.SuppressionAttackDSL,
	)
	if err != nil {
		return err
	}
	fmt.Println("compiled attack description (Figure 10):")
	fmt.Println(prog.Attack.Describe())

	cfg := experiment.SuppressionConfig{
		Profile:   profile,
		TimeScale: 20,
		Settle:    2 * time.Second,
		Ping:      monitor.PingConfig{Trials: 10, Interval: time.Second, Timeout: 2 * time.Second},
		Iperf: monitor.IperfMonitorConfig{
			Trials: 3, Duration: 5 * time.Second, Gap: 2 * time.Second,
			Client: dataplane.IperfConfig{
				SegmentSize: 1400, Window: 16,
				RTO: 1500 * time.Millisecond, ConnectTimeout: 4 * time.Second,
			},
		},
	}

	fmt.Printf("running baseline (%s)...\n", profile)
	baseline, err := experiment.RunSuppression(cfg)
	if err != nil {
		return err
	}
	cfg.Attacked = true
	fmt.Printf("running attack (%s)...\n\n", profile)
	attacked, err := experiment.RunSuppression(cfg)
	if err != nil {
		return err
	}

	fmt.Print(experiment.RenderFigure11([]*experiment.SuppressionResult{baseline, attacked}))
	fmt.Println()
	fmt.Print(experiment.RenderControlPlaneOverhead(baseline, attacked))

	if attacked.DoS() {
		fmt.Println("\nresult: complete denial of service — this controller releases buffered")
		fmt.Println("packets via the FLOW_MOD itself, so suppressing flow mods black-holes traffic")
	} else {
		baseTput := monitor.Summarize(baseline.Iperf.Throughputs()).Mean
		atkTput := monitor.Summarize(attacked.Iperf.Throughputs()).Mean
		fmt.Printf("\nresult: service degradation — throughput fell from %.2f to %.2f Mbps\n", baseTput, atkTput)
		fmt.Println("(this controller forwards misses with explicit PACKET_OUTs, so traffic")
		fmt.Println("survives, but every packet now detours through the controller)")
	}
	return nil
}
