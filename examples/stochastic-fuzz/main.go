// Stochastic fuzzing (paper §VIII-A future work + Table I's FUZZMESSAGE):
// corrupt a random fraction of controller-to-switch messages — DELTA-style
// fuzz testing expressed as a one-rule ATTAIN attack with a firing
// probability — and watch how the network copes.
//
// Run with: go run ./examples/stochastic-fuzz [-prob 0.3]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"attain/internal/clock"
	"attain/internal/controller"
	"attain/internal/core/compile"
	"attain/internal/experiment"
)

// The same attack in DSL form, to show the `prob` syntax.
const fuzzDSL = `
attack "control-fuzz" start sigma1 {
  state sigma1 {
    rule phi1 on (c1,s1), (c1,s2), (c1,s3), (c1,s4) caps notls prob %g {
      when msg.direction = "c2s"
      do fuzz
    }
  }
}
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stochastic-fuzz:", err)
		os.Exit(1)
	}
}

func run() error {
	prob := flag.Float64("prob", 0.3, "probability of fuzzing each controller-to-switch message")
	flag.Parse()

	dsl := fmt.Sprintf(fuzzDSL, *prob)
	prog, err := compile.Compile(experiment.EnterpriseSystemDSL, experiment.NoTLSAttackerDSL, dsl)
	if err != nil {
		return err
	}
	fmt.Println("compiled stochastic attack:")
	fmt.Println(prog.Attack.Describe())

	clk := clock.NewScaled(20)
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{
		Profile: controller.ProfileFloodlight,
		Clock:   clk,
		Attack:  prog.Attack,
	})
	if err != nil {
		return err
	}
	if err := tb.Start(); err != nil {
		return err
	}
	defer tb.Stop()

	connected := tb.WaitConnected(15*time.Second) == nil
	fmt.Printf("all switches connected through the fuzzing proxy: %v\n", connected)

	ok, lost := 0, 0
	if connected {
		clk.Sleep(time.Second)
		for i := 0; i < 20; i++ {
			if _, err := tb.Host("h1").Ping(tb.IPOf("h6"), 2*time.Second); err == nil {
				ok++
			} else {
				lost++
			}
		}
	}
	st := tb.Injector.Log().TotalStats()
	fmt.Printf("\npings: %d ok, %d lost\n", ok, lost)
	fmt.Printf("control-plane messages: %d seen, %d fuzzed (%.0f%%)\n",
		st.Seen, st.Fuzzed, 100*float64(st.Fuzzed)/float64(max(st.Seen, 1)))
	fmt.Println("\ncorrupted FLOW_MODs and PACKET_OUTs manifest as data-plane loss and")
	fmt.Println("decode errors at the switch — the kind of implementation-robustness signal")
	fmt.Println("DELTA-style fuzzing looks for, here as a reusable two-line attack description")
	return nil
}
