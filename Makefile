GO ?= go

.PHONY: ci vet build test race smoke bench clean

ci: vet build test race smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The campaign runner is the concurrency-heavy subsystem; keep it under
# the race detector on every CI run.
race:
	$(GO) test -race ./internal/campaign/...

# End-to-end smoke: one short interruption scenario through the campaign
# CLI, artifacts written to a scratch directory.
smoke:
	$(GO) run ./cmd/attain-campaign -spec examples/campaign/smoke.json -out /tmp/attain-smoke
	@test -s /tmp/attain-smoke/results.jsonl

bench:
	$(GO) test -bench=CampaignWorkers -benchtime=1x .

clean:
	rm -rf /tmp/attain-smoke
