GO ?= go

.PHONY: ci vet build test race cover smoke grid-smoke serve-smoke fabric-smoke synth-smoke fuzz-smoke fuzz-seed loadgen-smoke bench clean

ci: vet build test race cover fuzz-smoke smoke grid-smoke serve-smoke fabric-smoke synth-smoke loadgen-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Whole-repo race run: the injector, switch simulator, controller, and
# telemetry layer all share hot paths with the campaign worker pool, so
# everything stays under the race detector on every CI run.
race:
	$(GO) test -race ./...

# Coverage ratchet: the language core and its compiler are the packages
# every generated program flows through, and the grid/service layer is
# the durability substrate every distributed campaign rides, so their
# statement coverage is gated with hard floors (coverfloor fails CI
# below them).
cover:
	$(GO) test -cover ./internal/core/... ./internal/grid/... ./internal/gridsvc/... ./internal/topo/... > /tmp/attain-cover.txt
	$(GO) run ./docs/ci/coverfloor \
		attain/internal/core/lang=90 attain/internal/core/compile=90 \
		attain/internal/grid=80 attain/internal/gridsvc=80 \
		attain/internal/topo=80 \
		< /tmp/attain-cover.txt

# End-to-end smoke: one short interruption scenario through the campaign
# CLI with telemetry tracing on, artifacts written to a scratch directory.
smoke:
	$(GO) run ./cmd/attain-campaign -spec examples/campaign/smoke.json -trace -out /tmp/attain-smoke
	@test -s /tmp/attain-smoke/results.jsonl
	@ls /tmp/attain-smoke/traces/*.jsonl > /dev/null

# Distributed smoke: a coordinator plus two spawned worker subprocesses
# over loopback run the grid example spec end to end — the subprocess
# spawn path, frame protocol, leases, and merged artifacts all exercised
# for real. (internal/grid is also under `make race` via ./...)
grid-smoke:
	$(GO) run ./cmd/attain-grid local -spec examples/campaign/grid-smoke.json -workers 2 -out /tmp/attain-grid-smoke
	@test -s /tmp/attain-grid-smoke/results.jsonl
	@grep -q '"status":"ok"' /tmp/attain-grid-smoke/results.jsonl

# Service durability smoke: build attain-serve for real, submit a
# campaign over HTTP, SIGKILL the service mid-run, restart it over the
# same root, and assert the resumed campaign's results.jsonl is
# byte-identical (modulo wall-clock fields) to an uninterrupted
# single-process run — the checkpoint/restart contract end to end.
serve-smoke:
	$(GO) run ./docs/ci/servesmoke -spec examples/campaign/serve-smoke.json

# Fabric smoke, three gates:
#  1. A leaf-spine fabric through the campaign CLI under LLDP poisoning —
#     full control-plane and discovery convergence plus the deviation
#     signal (phantom links in the controller's topology view).
#  2. Shard invariance: the same campaign re-run shard-hosted
#     (fabric_shards) must agree byte-for-byte with the goroutine-mode run
#     on the shard-invariant projection of results.jsonl — shard count is
#     an execution knob, never an outcome change.
#  3. Large-fabric wall-time gate: a scaled-down jellyfish:1500x4
#     poisoned convergence (the 5,000-switch headline's CI proxy) run at
#     -benchtime=1x and compared against the committed BENCH_fabric.json
#     by benchcmp. Only the 1500-switch entry overlaps (the 5,000 entries
#     print but don't gate); the loose tolerance absorbs shared-CI noise
#     while still catching a bring-up path that lost its batching.
FABRIC_KEEP = index,name,kind,profile,attack,topology,seed,status,fabric.switches,fabric.links,fabric.hosts,fabric.connected,fabric.discovery_converged,fabric.deviation,fabric.flaps_applied
fabric-smoke:
	$(GO) run ./cmd/attain-campaign -spec examples/campaign/fabric-smoke.json -out /tmp/attain-fabric-smoke
	@test -s /tmp/attain-fabric-smoke/fabric.csv
	@grep -q '"connected":true' /tmp/attain-fabric-smoke/results.jsonl
	@grep -q '"discovery_converged":true' /tmp/attain-fabric-smoke/results.jsonl
	@grep -q '"deviation":true' /tmp/attain-fabric-smoke/results.jsonl
	$(GO) run ./cmd/attain-campaign -spec examples/campaign/fabric-smoke-sharded.json -out /tmp/attain-fabric-smoke-sharded
	$(GO) run ./docs/ci/canonjsonl -keep $(FABRIC_KEEP) < /tmp/attain-fabric-smoke/results.jsonl > /tmp/attain-fabric-proj-a
	$(GO) run ./docs/ci/canonjsonl -keep $(FABRIC_KEEP) < /tmp/attain-fabric-smoke-sharded/results.jsonl > /tmp/attain-fabric-proj-b
	cmp /tmp/attain-fabric-proj-a /tmp/attain-fabric-proj-b
	$(GO) test ./internal/topo/ -run='^$$' -bench='BenchmarkFabricConverge/jellyfish:1500x4' -benchtime=1x -timeout=5m \
	| tee /dev/stderr | $(GO) run ./docs/perf/benchjson > /tmp/attain-fabric-converge.json
	@grep -q 'FabricConverge/jellyfish:1500x4' /tmp/attain-fabric-converge.json
	$(GO) run ./docs/perf/benchcmp -tolerance 0.5 BENCH_fabric.json /tmp/attain-fabric-converge.json

# Sustained-load smoke: a small-scale pumps-vs-sharded duel through
# cmd/attain-loadgen, gated against the committed BENCH_sustained.json by
# benchcmp. Only the conns=200 entries overlap with the smoke run (the
# committed file's 10k-conn headline entries have different names, so they
# print but don't gate); the loose tolerance absorbs shared-CI noise while
# still catching a sharded core that lost its batching advantage.
loadgen-smoke:
	$(GO) run ./cmd/attain-loadgen -conns 200 -duration 1s -warmup 300ms \
	| $(GO) run ./docs/perf/benchjson > /tmp/attain-loadgen-smoke.json
	@grep -q 'sustained_speedup/conns=200' /tmp/attain-loadgen-smoke.json
	$(GO) run ./docs/perf/benchcmp -tolerance 0.5 BENCH_sustained.json /tmp/attain-loadgen-smoke.json

# Synth smoke: generator determinism (two same-seed runs must agree on
# the fleet digest, and a 1k-program differential verify must hold), then
# a small generated-program campaign end to end — detect.csv must appear
# and two same-seed campaign runs must agree on the deterministic
# projection of results.jsonl (program digests, status, coordinates).
synth-smoke:
	$(GO) run ./cmd/attain-synth -count 200 -seed 42 -digest > /tmp/attain-synth-digest-a
	$(GO) run ./cmd/attain-synth -count 200 -seed 42 -digest > /tmp/attain-synth-digest-b
	cmp /tmp/attain-synth-digest-a /tmp/attain-synth-digest-b
	$(GO) run ./cmd/attain-synth -count 1000 -seed 42 -verify -digest > /dev/null
	$(GO) run ./cmd/attain-campaign -spec examples/campaign/synth-smoke.json -out /tmp/attain-synth-smoke-a
	@test -s /tmp/attain-synth-smoke-a/detect.csv
	@grep -q '"status":"ok"' /tmp/attain-synth-smoke-a/results.jsonl
	$(GO) run ./cmd/attain-campaign -spec examples/campaign/synth-smoke.json -out /tmp/attain-synth-smoke-b
	$(GO) run ./docs/ci/canonjsonl < /tmp/attain-synth-smoke-a/results.jsonl > /tmp/attain-synth-proj-a
	$(GO) run ./docs/ci/canonjsonl < /tmp/attain-synth-smoke-b/results.jsonl > /tmp/attain-synth-proj-b
	cmp /tmp/attain-synth-proj-a /tmp/attain-synth-proj-b

# Reseed the compile fuzz corpora from generator output: well-formed
# whole programs for FuzzParseAttack, their rule conditions for
# FuzzParseExpr. Deterministic (seed 42), so re-running is idempotent.
fuzz-seed:
	$(GO) run ./cmd/attain-synth -count 16 -seed 42 -corpus internal/core/compile/testdata/fuzz

# Short fuzz pass over every Fuzz target (go's -fuzz wants exactly one
# match per invocation, hence one line per target).
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/switchsim/ -run=^$$ -fuzz=FuzzTableLookupDifferential -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/openflow/ -run=^$$ -fuzz=FuzzUnmarshal$$ -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/openflow/ -run=^$$ -fuzz=FuzzFrameViewDifferential -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core/compile/ -run=^$$ -fuzz=FuzzParseSystem$$ -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core/compile/ -run=^$$ -fuzz=FuzzParseAttack$$ -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core/compile/ -run=^$$ -fuzz=FuzzParseExpr$$ -fuzztime=$(FUZZTIME)

# Message-path and campaign benchmarks, recorded as BENCH_msgpath.json.
# The injector passthrough benchmark carries the zero-copy acceptance
# criteria: 0 allocs/op on the lazy path and >= 2x over the full-decode
# baseline (the derived.passthrough_* fields). Compare two runs with
# `go run ./docs/perf/benchcmp old.json new.json`.
BENCHTIME ?= 200000x
bench:
	{ $(GO) test ./internal/core/inject/ -run='^$$' -bench='BenchmarkInjector' -benchtime=$(BENCHTIME) -benchmem; \
	  $(GO) test . -run='^$$' -bench=CampaignWorkers -benchtime=1x -benchmem; } \
	| tee /dev/stderr | $(GO) run ./docs/perf/benchjson > BENCH_msgpath.json
	{ $(GO) test ./internal/topo/ -run='^$$' -bench='BenchmarkFabricBringup' -benchtime=50x -benchmem; \
	  $(GO) test ./internal/topo/ -run='^$$' -bench='BenchmarkFabricConverge' -benchtime=1x -timeout=10m; } \
	| tee /dev/stderr | $(GO) run ./docs/perf/benchjson > BENCH_fabric.json
	{ $(GO) run ./cmd/attain-loadgen; \
	  $(GO) run ./cmd/attain-loadgen -conns 200 -duration 2s -warmup 500ms; } \
	| tee /dev/stderr | $(GO) run ./docs/perf/benchjson > BENCH_sustained.json

clean:
	rm -rf /tmp/attain-smoke /tmp/attain-grid-smoke /tmp/attain-fabric-smoke \
		/tmp/attain-fabric-smoke-sharded /tmp/attain-synth-smoke-a /tmp/attain-synth-smoke-b
