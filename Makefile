GO ?= go

.PHONY: ci vet build test race smoke fuzz-smoke bench clean

ci: vet build test race fuzz-smoke smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Whole-repo race run: the injector, switch simulator, controller, and
# telemetry layer all share hot paths with the campaign worker pool, so
# everything stays under the race detector on every CI run.
race:
	$(GO) test -race ./...

# End-to-end smoke: one short interruption scenario through the campaign
# CLI with telemetry tracing on, artifacts written to a scratch directory.
smoke:
	$(GO) run ./cmd/attain-campaign -spec examples/campaign/smoke.json -trace -out /tmp/attain-smoke
	@test -s /tmp/attain-smoke/results.jsonl
	@ls /tmp/attain-smoke/traces/*.jsonl > /dev/null

# Short fuzz pass over every Fuzz target (go's -fuzz wants exactly one
# match per invocation, hence one line per target).
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/switchsim/ -run=^$$ -fuzz=FuzzTableLookupDifferential -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/openflow/ -run=^$$ -fuzz=FuzzUnmarshal -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core/compile/ -run=^$$ -fuzz=FuzzParseSystem$$ -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core/compile/ -run=^$$ -fuzz=FuzzParseAttack$$ -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core/compile/ -run=^$$ -fuzz=FuzzParseExpr$$ -fuzztime=$(FUZZTIME)

bench:
	$(GO) test -bench=CampaignWorkers -benchtime=1x .

clean:
	rm -rf /tmp/attain-smoke
