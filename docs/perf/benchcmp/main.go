// Command benchcmp compares two benchjson documents (see
// docs/perf/benchjson) and prints a benchstat-style before/after table:
//
//	go run ./docs/perf/benchcmp old.json new.json
//
// Positive deltas mean the new run is slower / allocates more. Exits
// non-zero if any benchmark present in both files regressed ns/op by more
// than -tolerance (default 20%), so it can gate perf changes in CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type doc struct {
	Benchmarks []result `json:"benchmarks"`
}

func load(path string) (map[string]result, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var d doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]result, len(d.Benchmarks))
	var names []string
	for _, r := range d.Benchmarks {
		m[r.Name] = r
		names = append(names, r.Name)
	}
	sort.Strings(names)
	return m, names, nil
}

func main() {
	tolerance := flag.Float64("tolerance", 0.20, "max allowed ns/op regression before exiting non-zero")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-tolerance 0.2] old.json new.json")
		os.Exit(2)
	}
	oldM, names, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	newM, _, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	fmt.Printf("%-55s %12s %12s %8s %10s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs")
	regressed := false
	for _, name := range names {
		o := oldM[name]
		n, ok := newM[name]
		if !ok {
			fmt.Printf("%-55s %12.1f %12s %8s %10s\n", name, o.NsPerOp, "-", "-", "-")
			continue
		}
		delta := 0.0
		if o.NsPerOp > 0 {
			delta = (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		}
		mark := ""
		if delta > *tolerance {
			mark = "  <-- regression"
			regressed = true
		}
		fmt.Printf("%-55s %12.1f %12.1f %+7.1f%% %4d->%-4d%s\n",
			name, o.NsPerOp, n.NsPerOp, delta*100, o.AllocsPerOp, n.AllocsPerOp, mark)
	}
	for name, n := range newM {
		if _, ok := oldM[name]; !ok {
			fmt.Printf("%-55s %12s %12.1f %8s %6s%-4d\n", name, "-", n.NsPerOp, "-", "-> ", n.AllocsPerOp)
		}
	}
	if regressed {
		os.Exit(1)
	}
}
