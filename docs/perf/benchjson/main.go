// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a stable JSON document on stdout, so benchmark runs can be committed
// (BENCH_msgpath.json) and diffed with docs/perf/benchcmp.
//
// Usage:
//
//	go test -bench . -benchmem ./... | go run ./docs/perf/benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line. Units the Go tooling doesn't standardize
// (testing.B.ReportMetric and the loadgen harness's msgs/s, p99-ns, ...)
// land in Extra keyed by their unit string.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerSec    float64            `json:"mb_per_sec,omitempty"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Doc is the emitted document.
type Doc struct {
	Goos       string            `json:"goos,omitempty"`
	Goarch     string            `json:"goarch,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks []Result          `json:"benchmarks"`
	Derived    map[string]string `json:"derived,omitempty"`
}

func main() {
	doc := Doc{Derived: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	derive(&doc)
	sort.Slice(doc.Benchmarks, func(i, j int) bool { return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name })
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine decodes one "BenchmarkName-8  N  x ns/op  [y MB/s]  [z B/op  w allocs/op]" line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
	}
	r := Result{Name: name}
	var err error
	if r.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
		return Result{}, false
	}
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(val, 64)
		case "MB/s":
			r.MBPerSec, _ = strconv.ParseFloat(val, 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		default:
			if f, err := strconv.ParseFloat(val, 64); err == nil {
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[unit] = f
			}
		}
	}
	return r, true
}

// derive records headline ratios (e.g. lazy-vs-baseline speedup) so the
// committed document answers "how much faster" without arithmetic.
func derive(doc *Doc) {
	byName := map[string]Result{}
	for _, r := range doc.Benchmarks {
		byName[r.Name] = r
	}
	lazy, ok1 := byName["BenchmarkInjectorPassthrough/lazy"]
	base, ok2 := byName["BenchmarkInjectorPassthrough/fulldecode-baseline"]
	if ok1 && ok2 && lazy.NsPerOp > 0 {
		doc.Derived["passthrough_speedup"] = fmt.Sprintf("%.2fx", base.NsPerOp/lazy.NsPerOp)
		doc.Derived["passthrough_allocs_per_op"] = strconv.FormatInt(lazy.AllocsPerOp, 10)
	}
	// Sustained-load duel (cmd/attain-loadgen): sharded vs pump msgs/s at
	// equal offered load, one ratio per conns= variant present in both.
	for name, sh := range byName {
		const shardedPrefix = "BenchmarkSustained/mode=sharded/"
		if !strings.HasPrefix(name, shardedPrefix) {
			continue
		}
		pu, ok := byName["BenchmarkSustained/mode=pumps/"+strings.TrimPrefix(name, shardedPrefix)]
		if !ok || pu.Extra["msgs/s"] <= 0 || sh.Extra["msgs/s"] <= 0 {
			continue
		}
		doc.Derived["sustained_speedup/"+strings.TrimPrefix(name, shardedPrefix)] =
			fmt.Sprintf("%.2fx", sh.Extra["msgs/s"]/pu.Extra["msgs/s"])
	}
	if len(doc.Derived) == 0 {
		doc.Derived = nil
	}
}
