// Command canonjsonl projects a campaign results.jsonl stream onto its
// deterministic fields and re-marshals each record with sorted keys, so
// two equal-seed campaign runs can be compared byte-for-byte even though
// wall-clock and fabric-timing fields legitimately differ between runs.
//
// Usage:
//
//	go run ./docs/ci/canonjsonl < results.jsonl > projected.jsonl
//	go run ./docs/ci/canonjsonl -keep index,name,synth < results.jsonl
//	go run ./docs/ci/canonjsonl -keep name,status,fabric.deviation < results.jsonl
//
// The default projection keeps the scenario coordinates, status, and the
// synth program identity (per-program seed + DSL digest) — the fields a
// determinism check must find identical across same-seed runs and shards.
// A dotted entry like fabric.deviation keeps only that sub-field of a
// nested object, which is how the fabric-smoke gate compares campaigns
// run at different fabric_shards settings: shard count is an execution
// knob, so the projected verdicts must match byte-for-byte.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	keep := flag.String("keep", "index,name,kind,profile,attack,topology,seed,status,synth",
		"comma-separated top-level fields to keep; parent.child keeps one sub-field of a nested object")
	flag.Parse()
	if err := run(strings.Split(*keep, ",")); err != nil {
		fmt.Fprintln(os.Stderr, "canonjsonl:", err)
		os.Exit(1)
	}
}

func run(keep []string) error {
	// keepSet maps a kept top-level field to the set of kept sub-fields;
	// a nil set keeps the whole value.
	keepSet := make(map[string]map[string]bool, len(keep))
	for _, k := range keep {
		if k = strings.TrimSpace(k); k == "" {
			continue
		}
		if top, sub, ok := strings.Cut(k, "."); ok {
			if keepSet[top] == nil {
				keepSet[top] = make(map[string]bool)
			}
			keepSet[top][sub] = true
		} else if _, exists := keepSet[k]; !exists {
			keepSet[k] = nil
		}
	}
	out := bufio.NewWriter(os.Stdout)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			return fmt.Errorf("bad record: %v", err)
		}
		for k, v := range m {
			subs, kept := keepSet[k]
			if !kept {
				delete(m, k)
				continue
			}
			if subs == nil {
				continue
			}
			nested, ok := v.(map[string]any)
			if !ok {
				continue
			}
			for sk := range nested {
				if !subs[sk] {
					delete(nested, sk)
				}
			}
		}
		b, err := json.Marshal(m)
		if err != nil {
			return err
		}
		out.Write(b)
		out.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return out.Flush()
}
