// Command canonjsonl projects a campaign results.jsonl stream onto its
// deterministic fields and re-marshals each record with sorted keys, so
// two equal-seed campaign runs can be compared byte-for-byte even though
// wall-clock and fabric-timing fields legitimately differ between runs.
//
// Usage:
//
//	go run ./docs/ci/canonjsonl < results.jsonl > projected.jsonl
//	go run ./docs/ci/canonjsonl -keep index,name,synth < results.jsonl
//
// The default projection keeps the scenario coordinates, status, and the
// synth program identity (per-program seed + DSL digest) — the fields a
// determinism check must find identical across same-seed runs and shards.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	keep := flag.String("keep", "index,name,kind,profile,attack,topology,seed,status,synth",
		"comma-separated top-level fields to keep")
	flag.Parse()
	if err := run(strings.Split(*keep, ",")); err != nil {
		fmt.Fprintln(os.Stderr, "canonjsonl:", err)
		os.Exit(1)
	}
}

func run(keep []string) error {
	keepSet := make(map[string]bool, len(keep))
	for _, k := range keep {
		if k = strings.TrimSpace(k); k != "" {
			keepSet[k] = true
		}
	}
	out := bufio.NewWriter(os.Stdout)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			return fmt.Errorf("bad record: %v", err)
		}
		for k := range m {
			if !keepSet[k] {
				delete(m, k)
			}
		}
		b, err := json.Marshal(m)
		if err != nil {
			return err
		}
		out.Write(b)
		out.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return out.Flush()
}
