// Command coverfloor gates per-package statement coverage. It reads
// `go test -cover` output on stdin, echoes it, and fails if any package
// named in a floor argument is missing from the input or reports coverage
// below its floor.
//
// Usage:
//
//	go test -cover ./... | go run ./docs/ci/coverfloor \
//	    attain/internal/core/lang=90 attain/internal/core/compile=90
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "coverfloor:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	floors := make(map[string]float64, len(args))
	for _, arg := range args {
		pkg, val, ok := strings.Cut(arg, "=")
		if !ok {
			return fmt.Errorf("floor %q: want <package>=<percent>", arg)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("floor %q: %v", arg, err)
		}
		floors[pkg] = f
	}
	if len(floors) == 0 {
		return fmt.Errorf("no floors given")
	}

	got := make(map[string]float64)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		// "ok  attain/internal/core/lang  0.01s  coverage: 92.3% of statements"
		if !strings.HasPrefix(line, "ok") {
			continue
		}
		fields := strings.Fields(line)
		for i, f := range fields {
			if f == "coverage:" && i+1 < len(fields) && i >= 1 {
				pct, err := strconv.ParseFloat(strings.TrimSuffix(fields[i+1], "%"), 64)
				if err == nil {
					got[fields[1]] = pct
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	var failed []string
	for pkg, floor := range floors {
		pct, ok := got[pkg]
		if !ok {
			failed = append(failed, fmt.Sprintf("%s: no coverage reported (package missing from input?)", pkg))
			continue
		}
		if pct < floor {
			failed = append(failed, fmt.Sprintf("%s: coverage %.1f%% below floor %.1f%%", pkg, pct, floor))
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("coverage floors violated:\n  %s", strings.Join(failed, "\n  "))
	}
	return nil
}
