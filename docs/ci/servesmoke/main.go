// Command servesmoke is the durability smoke for attain-serve: it builds
// the real binary, submits a campaign over HTTP, SIGKILLs the service
// mid-run, restarts it over the same root, waits for the resumed campaign
// to finish, and asserts the recovered results.jsonl is byte-identical
// (modulo wall-clock fields) to an uninterrupted single-process run of
// the same spec. This is the checkpoint/restart contract exercised the
// way an operator would hit it — kill -9, restart, same bytes.
//
// Usage:
//
//	go run ./docs/ci/servesmoke -spec examples/campaign/serve-smoke.json
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"attain/internal/campaign"
)

func main() {
	spec := flag.String("spec", "examples/campaign/serve-smoke.json", "campaign spec to submit")
	workdir := flag.String("workdir", "", "scratch directory (default: a fresh temp dir)")
	timeout := flag.Duration("timeout", 3*time.Minute, "overall deadline")
	flag.Parse()
	if err := run(*spec, *workdir, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: PASS")
}

// server is one attain-serve process plus the base URL scraped from its
// "serving on http://ADDR" banner.
type server struct {
	cmd *exec.Cmd
	url string
}

// startServer launches the built binary on an ephemeral port over root
// and waits for the banner. The process must be a real subprocess (not
// `go run`) so SIGKILL hits the service itself, not a wrapper.
func startServer(ctx context.Context, bin, root string) (*server, error) {
	cmd := exec.Command(bin, "-listen", "127.0.0.1:0", "-root", root)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	banner := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fmt.Println("  serve:", line)
			if addr, ok := strings.CutPrefix(line, "serving on http://"); ok {
				select {
				case banner <- addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-banner:
		return &server{cmd: cmd, url: "http://" + addr}, nil
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		return nil, fmt.Errorf("attain-serve did not announce its address")
	case <-ctx.Done():
		cmd.Process.Kill()
		return nil, ctx.Err()
	}
}

// status is the slice of CampaignStatus the driver cares about.
type status struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Grid  struct {
		Total int `json:"total"`
		Done  int `json:"done"`
	} `json:"grid"`
}

func getStatus(url, id string) (status, error) {
	var st status
	resp, err := http.Get(url + "/api/campaigns/" + id)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return st, fmt.Errorf("status %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func run(specPath, workdir string, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	if workdir == "" {
		dir, err := os.MkdirTemp("", "attain-servesmoke-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		workdir = dir
	} else if err := os.MkdirAll(workdir, 0o755); err != nil {
		return err
	}
	root := filepath.Join(workdir, "root")

	// Build the real binary: SIGKILL must hit attain-serve itself, and
	// `go run` would only kill the wrapper.
	bin := filepath.Join(workdir, "attain-serve")
	build := exec.CommandContext(ctx, "go", "build", "-o", bin, "./cmd/attain-serve")
	build.Stdout, build.Stderr = os.Stderr, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build attain-serve: %w", err)
	}

	specData, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}

	// Phase 1: start, submit, wait for a partial result prefix, SIGKILL.
	srv, err := startServer(ctx, bin, root)
	if err != nil {
		return err
	}
	resp, err := http.Post(srv.url+"/api/campaigns", "application/json", bytes.NewReader(specData))
	if err != nil {
		srv.cmd.Process.Kill()
		return fmt.Errorf("submit: %w", err)
	}
	var submitted status
	submitErr := json.NewDecoder(resp.Body).Decode(&submitted)
	resp.Body.Close()
	if submitErr != nil || resp.StatusCode != http.StatusCreated || submitted.ID == "" {
		srv.cmd.Process.Kill()
		return fmt.Errorf("submit: status %s, id %q, err %v", resp.Status, submitted.ID, submitErr)
	}
	fmt.Printf("submitted campaign %s (%d scenarios)\n", submitted.ID, submitted.Grid.Total)

	for {
		st, err := getStatus(srv.url, submitted.ID)
		if err != nil {
			srv.cmd.Process.Kill()
			return fmt.Errorf("poll status: %w", err)
		}
		if st.Grid.Done >= 2 {
			fmt.Printf("killing attain-serve with %d/%d scenarios recorded\n", st.Grid.Done, st.Grid.Total)
			break
		}
		select {
		case <-ctx.Done():
			srv.cmd.Process.Kill()
			return fmt.Errorf("campaign never recorded a prefix to interrupt")
		case <-time.After(20 * time.Millisecond):
		}
	}
	if err := srv.cmd.Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
		return err
	}
	srv.cmd.Wait()

	// Phase 2: restart over the same root; the service must resume the
	// interrupted campaign on its own and drive it to done.
	srv2, err := startServer(ctx, bin, root)
	if err != nil {
		return err
	}
	defer func() {
		srv2.cmd.Process.Signal(os.Interrupt)
		srv2.cmd.Wait()
	}()
	for {
		st, err := getStatus(srv2.url, submitted.ID)
		if err == nil && st.State == "done" {
			fmt.Printf("resumed campaign finished: %d/%d scenarios\n", st.Grid.Done, st.Grid.Total)
			if st.Grid.Done != submitted.Grid.Total {
				return fmt.Errorf("resumed campaign recorded %d scenarios, want %d", st.Grid.Done, submitted.Grid.Total)
			}
			break
		}
		if err == nil && (st.State == "failed" || st.State == "aborted") {
			return fmt.Errorf("resumed campaign ended %s", st.State)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("resumed campaign did not finish in time")
		case <-time.After(50 * time.Millisecond):
		}
	}

	// Download the recovered artifact over the API (exercises the
	// artifact endpoint, not just the filesystem).
	resp, err = http.Get(srv2.url + "/api/campaigns/" + submitted.ID + "/artifacts/" + campaign.ResultsFile)
	if err != nil {
		return fmt.Errorf("download results: %w", err)
	}
	served, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return fmt.Errorf("download results: status %s, err %v", resp.Status, err)
	}

	// Reference: the same spec, uninterrupted, in-process.
	refCanon, err := referenceRun(ctx, specData, filepath.Join(workdir, "ref"))
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}
	gotCanon, err := campaign.CanonicalJSONL(served)
	if err != nil {
		return fmt.Errorf("canonicalize served results: %w", err)
	}
	if !bytes.Equal(gotCanon, refCanon) {
		return fmt.Errorf("killed-and-resumed results differ from the uninterrupted run (%d vs %d canonical bytes)",
			len(gotCanon), len(refCanon))
	}
	fmt.Printf("recovered results byte-identical to uninterrupted run (%d canonical bytes)\n", len(gotCanon))
	return nil
}

// referenceRun executes the spec single-process into dir and returns the
// canonical projection of its results.jsonl.
func referenceRun(ctx context.Context, specData []byte, dir string) ([]byte, error) {
	spec, err := campaign.ParseSpec(specData)
	if err != nil {
		return nil, err
	}
	matrix, err := spec.Matrix()
	if err != nil {
		return nil, err
	}
	store, err := campaign.NewStore(dir)
	if err != nil {
		return nil, err
	}
	cfg := spec.RunnerConfig()
	cfg.Store = store
	runner := campaign.NewRunner(cfg)
	if _, err := runner.Run(ctx, matrix.Expand()); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(dir, campaign.ResultsFile))
	if err != nil {
		return nil, err
	}
	return campaign.CanonicalJSONL(data)
}
