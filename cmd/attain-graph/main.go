// Command attain-graph renders ATTAIN models as Graphviz DOT or text: the
// data-plane graph N_D, the control-plane relation N_C, and attack state
// graphs Σ_G, reproducing the paper's Figures 3, 4, 5, 8, 9, 10b, and 12b.
//
// Usage:
//
//	attain-graph -example fig3 -kind nd          # Figure 3
//	attain-graph -example fig4 -kind nc          # Figure 4
//	attain-graph -example enterprise -kind nd    # Figure 8
//	attain-graph -example enterprise -kind nc    # Figure 9
//	attain-graph -example trivial                # Figure 5 (attack graph)
//	attain-graph -example suppression            # Figure 10b
//	attain-graph -example interruption           # Figure 12b
//	attain-graph -system sys.attain -kind summary
//	attain-graph -system sys.attain -attack states.attain
//	attain-graph -topo fattree:4                 # generated topology, DOT
//	attain-graph -topo leafspine:4x12x2 -format json
package main

import (
	"flag"
	"fmt"
	"os"

	"attain/internal/core/compile"
	"attain/internal/core/lang"
	"attain/internal/core/model"
	"attain/internal/experiment"
	"attain/internal/topo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attain-graph:", err)
		os.Exit(1)
	}
}

func run() error {
	example := flag.String("example", "", "built-in example: fig3, fig4, enterprise, trivial, suppression, interruption")
	kind := flag.String("kind", "", "what to render for a system: nd, nc, or summary")
	systemPath := flag.String("system", "", "system model file to render")
	attackPath := flag.String("attack", "", "attack states file to render as a state graph")
	topoDesc := flag.String("topo", "", `generated topology to render, e.g. "fattree:4", "leafspine:4x12x2", "jellyfish:50x5"`)
	topoSeed := flag.Int64("seed", 1, "generator seed for -topo")
	format := flag.String("format", "dot", "-topo output format: dot or json")
	flag.Parse()

	if *topoDesc != "" {
		return renderTopo(*topoDesc, *topoSeed, *format)
	}
	if *example != "" {
		return renderExample(*example, *kind)
	}
	if *systemPath == "" {
		return fmt.Errorf("either -example or -system is required")
	}
	data, err := os.ReadFile(*systemPath)
	if err != nil {
		return err
	}
	sys, err := compile.CompileSystem(string(data))
	if err != nil {
		return err
	}
	if *attackPath != "" {
		adata, err := os.ReadFile(*attackPath)
		if err != nil {
			return err
		}
		attack, err := compile.CompileAttack(string(adata), sys)
		if err != nil {
			return err
		}
		fmt.Print(attack.Graph().DOT())
		return nil
	}
	return renderSystem(sys, *kind)
}

// renderTopo generates a topology from its descriptor and renders it as
// Graphviz DOT or canonical JSON.
func renderTopo(desc string, seed int64, format string) error {
	g, err := topo.Parse(desc, seed)
	if err != nil {
		return err
	}
	switch format {
	case "dot":
		fmt.Print(g.DOT())
	case "json":
		data, err := g.CanonicalJSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
	default:
		return fmt.Errorf("unknown -format %q (want dot or json)", format)
	}
	return nil
}

func renderSystem(sys *model.System, kind string) error {
	switch kind {
	case "nd":
		fmt.Print(sys.DataPlaneDOT())
	case "nc":
		fmt.Print(sys.ControlPlaneDOT())
	case "summary", "":
		fmt.Print(sys.Summary())
	default:
		return fmt.Errorf("unknown kind %q (want nd, nc, or summary)", kind)
	}
	return nil
}

func renderAttack(a *lang.Attack) error {
	fmt.Print(a.Describe())
	fmt.Println()
	fmt.Print(a.Graph().DOT())
	return nil
}

func renderExample(name, kind string) error {
	enterprise := experiment.EnterpriseSystem()
	switch name {
	case "fig3":
		return renderSystem(model.Figure3System(), orDefault(kind, "nd"))
	case "fig4":
		return renderSystem(model.Figure4System(), orDefault(kind, "nc"))
	case "enterprise":
		return renderSystem(enterprise, kind)
	case "trivial":
		return renderAttack(experiment.TrivialAttack(enterprise))
	case "suppression":
		return renderAttack(experiment.SuppressionAttack(enterprise))
	case "interruption":
		return renderAttack(experiment.InterruptionAttack(enterprise))
	default:
		return fmt.Errorf("unknown example %q", name)
	}
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
