package main

import "testing"

func TestRenderExamples(t *testing.T) {
	cases := []struct {
		example, kind string
	}{
		{"fig3", ""}, {"fig3", "nd"}, {"fig3", "summary"},
		{"fig4", ""}, {"fig4", "nc"},
		{"enterprise", "nd"}, {"enterprise", "nc"}, {"enterprise", "summary"},
		{"trivial", ""}, {"suppression", ""}, {"interruption", ""},
	}
	for _, tc := range cases {
		if err := renderExample(tc.example, tc.kind); err != nil {
			t.Errorf("renderExample(%q, %q): %v", tc.example, tc.kind, err)
		}
	}
	if err := renderExample("nope", ""); err == nil {
		t.Error("unknown example accepted")
	}
	if err := renderExample("fig3", "bogus"); err == nil {
		t.Error("unknown kind accepted")
	}
}
