// Command attain is the ATTAIN attack injector CLI: it compiles the three
// user-supplied files (system model, attack model, attack states), validates
// them against each other, and can run the runtime injector, proxying every
// control-plane connection over loopback TCP.
//
// Usage:
//
//	attain validate -system sys.attain -attacker atk.attain -attack states.attain
//	attain describe -system sys.attain -attacker atk.attain -attack states.attain
//	attain run      -system sys.attain -attacker atk.attain -attack states.attain [-base-port 16653]
//
// validate reports compilation and cross-validation results; describe also
// prints the attack textually and its state graph in DOT; run starts the
// proxy and prints, for every control-plane connection, the address a
// switch must dial instead of its controller.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"attain/internal/clock"
	"attain/internal/core/compile"
	"attain/internal/core/inject"
	"attain/internal/core/model"
	"attain/internal/netem"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "attain:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: attain <validate|describe|run> [flags]")
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	systemPath := fs.String("system", "", "system model file (DSL or XML)")
	attackerPath := fs.String("attacker", "", "attack model file (DSL or XML)")
	attackPath := fs.String("attack", "", "attack states file (DSL or XML)")
	basePort := fs.Int("base-port", 16653, "run: first loopback TCP port for proxy listeners")
	logEvents := fs.Bool("log", true, "run: stream injector events to stdout")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if *systemPath == "" || *attackerPath == "" || *attackPath == "" {
		return fmt.Errorf("%s requires -system, -attacker, and -attack", cmd)
	}

	prog, err := compile.CompileFiles(*systemPath, *attackerPath, *attackPath)
	if err != nil {
		return err
	}

	switch cmd {
	case "validate":
		fmt.Printf("ok: attack %q over %d states, %d control-plane connections\n",
			prog.Attack.Name, len(prog.Attack.States), len(prog.System.ControlPlane))
		for _, warning := range prog.Attack.Lint() {
			fmt.Printf("warning: %s\n", warning)
		}
		return nil
	case "describe":
		fmt.Println(prog.System.Summary())
		fmt.Println(prog.Attacker.String())
		fmt.Println()
		fmt.Println(prog.Attack.Describe())
		fmt.Println(prog.Attack.Graph().DOT())
		return nil
	case "run":
		return runInjector(prog, *basePort, *logEvents)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// runInjector starts the proxy over loopback TCP and blocks until SIGINT.
func runInjector(prog *compile.Program, basePort int, logEvents bool) error {
	// Assign each control-plane connection a deterministic loopback port.
	ports := make(map[model.Conn]string, len(prog.System.ControlPlane))
	for i, conn := range prog.System.ControlPlane {
		ports[conn] = fmt.Sprintf("127.0.0.1:%d", basePort+i)
	}
	cfg := inject.Config{
		System:    prog.System,
		Attacker:  prog.Attacker,
		Attack:    prog.Attack,
		Transport: netem.TCPTransport{},
		Clock:     clock.New(),
		ProxyAddr: func(conn model.Conn) string { return ports[conn] },
	}
	if logEvents {
		cfg.LogWriter = os.Stdout
	}
	inj, err := inject.New(cfg)
	if err != nil {
		return err
	}
	if err := inj.Start(); err != nil {
		return err
	}
	defer inj.Stop()

	fmt.Printf("attack %q running; point each switch at its proxy address:\n", prog.Attack.Name)
	for _, conn := range prog.System.ControlPlane {
		ctrl, _ := prog.System.ControllerByID(conn.Controller)
		fmt.Printf("  %s: dial %s (proxied to controller %s at %s)\n",
			conn, ports[conn], conn.Controller, ctrl.ListenAddr)
	}
	fmt.Println("press Ctrl-C to stop")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	st := inj.Log().TotalStats()
	fmt.Printf("\nfinal state: %s\n", inj.CurrentState())
	fmt.Printf("messages: seen=%d delivered=%d dropped=%d duplicated=%d injected=%d rule-fires=%d\n",
		st.Seen, st.Delivered, st.Dropped, st.Duplicated, st.Injected, st.RuleFires)
	// Give the log writer a beat to flush streamed lines.
	time.Sleep(50 * time.Millisecond)
	return nil
}
