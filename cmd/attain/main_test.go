package main

import (
	"os"
	"path/filepath"
	"testing"

	"attain/internal/experiment"
)

func fixtureArgs(t *testing.T) (string, string, string) {
	t.Helper()
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	return write("system.attain", experiment.EnterpriseSystemDSL),
		write("attacker.attain", experiment.NoTLSAttackerDSL),
		write("attack.attain", experiment.InterruptionAttackDSL)
}

func TestValidateCommand(t *testing.T) {
	sys, atk, att := fixtureArgs(t)
	if err := run([]string{"validate", "-system", sys, "-attacker", atk, "-attack", att}); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestDescribeCommand(t *testing.T) {
	sys, atk, att := fixtureArgs(t)
	if err := run([]string{"describe", "-system", sys, "-attacker", atk, "-attack", att}); err != nil {
		t.Fatalf("describe: %v", err)
	}
}

func TestRunRejectsBadUsage(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no-arg run accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run([]string{"validate"}); err == nil {
		t.Error("missing flags accepted")
	}
	sys, atk, _ := fixtureArgs(t)
	if err := run([]string{"validate", "-system", sys, "-attacker", atk, "-attack", "/nope"}); err == nil {
		t.Error("missing attack file accepted")
	}
}

func TestValidateRejectsUnderprivileged(t *testing.T) {
	dir := t.TempDir()
	sys := filepath.Join(dir, "system.attain")
	if err := os.WriteFile(sys, []byte(experiment.EnterpriseSystemDSL), 0o644); err != nil {
		t.Fatal(err)
	}
	atk := filepath.Join(dir, "attacker.attain")
	tlsGrants := `attacker {
  grant (c1,s1) tls
  grant (c1,s2) tls
  grant (c1,s3) tls
  grant (c1,s4) tls
}`
	if err := os.WriteFile(atk, []byte(tlsGrants), 0o644); err != nil {
		t.Fatal(err)
	}
	att := filepath.Join(dir, "attack.attain")
	if err := os.WriteFile(att, []byte(experiment.SuppressionAttackDSL), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"validate", "-system", sys, "-attacker", atk, "-attack", att}); err == nil {
		t.Error("payload-reading attack validated under TLS grants")
	}
}
