// Command attain-lab reproduces the ATTAIN paper's evaluation (§VII) on the
// simulated enterprise testbed: the flow modification suppression experiment
// (Figure 11) and the connection interruption experiment (Table II), across
// the Floodlight, POX, and Ryu controller profiles.
//
// Usage:
//
//	attain-lab -experiment fig11            # suppression, all controllers
//	attain-lab -experiment table2           # interruption, all combinations
//	attain-lab -experiment all              # both
//	attain-lab -experiment fig11 -full      # paper-faithful trial counts
//	attain-lab -scale 40                    # virtual-time speed-up
//	attain-lab -parallel 4                  # run scenarios concurrently
//	attain-lab -seed 7 -out results/        # seeded run with JSONL artifacts
//
// By default a reduced timeline runs in under a minute; -full uses the
// paper's 60 ping and 30 iperf trials (slower). Scenarios run through the
// campaign runner on isolated testbeds, so -parallel N changes wall-clock
// time but not results.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"attain/internal/campaign"
	"attain/internal/controller"
	"attain/internal/experiment"
	"attain/internal/switchsim"
	"attain/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attain-lab:", err)
		os.Exit(1)
	}
}

var profiles = []controller.Profile{
	controller.ProfileFloodlight,
	controller.ProfilePOX,
	controller.ProfileRyu,
}

type options struct {
	scale    int
	full     bool
	parallel int
	seed     int64
	out      string
	csv      string
	trace    bool
}

func run() error {
	experimentName := flag.String("experiment", "all", "fig11, table2, or all")
	var o options
	flag.IntVar(&o.scale, "scale", 20, "virtual time speed-up factor")
	flag.BoolVar(&o.full, "full", false, "use the paper's full trial counts (60 ping / 30 iperf)")
	flag.IntVar(&o.parallel, "parallel", 1, "number of concurrent scenarios")
	flag.Int64Var(&o.seed, "seed", 1, "campaign seed for stochastic attack rules")
	flag.StringVar(&o.out, "out", "", "directory for per-scenario JSONL and aggregate CSV artifacts")
	flag.StringVar(&o.csv, "csv", "", "also write per-trial results as CSV (fig11.csv / table2.csv under this prefix)")
	flag.BoolVar(&o.trace, "trace", false, "collect per-scenario telemetry traces (written under -out as traces/*.jsonl)")
	debugAddr := flag.String("debug", "", "serve expvar and pprof debug endpoints on this address (e.g. localhost:6060)")
	flag.Parse()

	if *debugAddr != "" {
		addr, err := telemetry.ServeDebug(*debugAddr)
		if err != nil {
			return fmt.Errorf("start debug server: %w", err)
		}
		fmt.Printf("debug endpoints on http://%s/debug/\n", addr)
	}

	switch *experimentName {
	case "fig11":
		return runFig11(o)
	case "table2":
		return runTable2(o)
	case "all":
		if err := runFig11(o); err != nil {
			return err
		}
		fmt.Println()
		return runTable2(o)
	default:
		return fmt.Errorf("unknown experiment %q", *experimentName)
	}
}

// runMatrix expands and executes one experiment matrix on the campaign
// runner, writing artifacts under <out>/<sub> when -out is set. A scenario
// failure fails the lab run: this harness exists to reproduce the paper's
// tables, and a hole in the matrix makes them meaningless.
func runMatrix(m campaign.Matrix, o options, sub string) (*campaign.Report, error) {
	cfg := campaign.RunnerConfig{Workers: o.parallel, Progress: os.Stdout}
	if o.out != "" {
		store, err := campaign.NewStore(filepath.Join(o.out, sub))
		if err != nil {
			return nil, err
		}
		cfg.Store = store
	}
	scenarios, err := m.Scenarios()
	if err != nil {
		return nil, err
	}
	report, err := campaign.NewRunner(cfg).Run(context.Background(), scenarios)
	if err != nil {
		return nil, err
	}
	if failed := report.Failed(); len(failed) > 0 {
		return nil, fmt.Errorf("%d scenario(s) failed:\n%s", len(failed), report.Summary())
	}
	return report, nil
}

// writeCSV writes one CSV artefact next to the given prefix.
func writeCSV(prefix, name string, write func(w *os.File) error) (err error) {
	path := prefix + name
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if err := write(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func runFig11(o options) error {
	fmt.Println("== Experiment: flow modification suppression (paper §VII-B, Figure 10) ==")
	report, err := runMatrix(campaign.Matrix{
		Kinds:     []campaign.Kind{campaign.KindSuppression},
		Profiles:  profiles,
		Attacks:   []string{campaign.AttackBaseline, campaign.AttackSuppression},
		TimeScale: o.scale,
		Seed:      o.seed,
		Workload:  campaign.Workload{Full: o.full},
		Trace:     o.trace,
	}, o, "fig11")
	if err != nil {
		return err
	}
	results := report.SuppressionResults()
	fmt.Println()
	fmt.Print(experiment.RenderFigure11(results))
	fmt.Println()
	// Expansion order is (baseline, attack) per profile, so consecutive
	// pairs feed the overhead comparison.
	for i := 0; i+1 < len(results); i += 2 {
		fmt.Print(experiment.RenderControlPlaneOverhead(results[i], results[i+1]))
		fmt.Println()
	}
	if o.csv != "" {
		return writeCSV(o.csv, "fig11.csv", func(w *os.File) error {
			return experiment.WriteFigure11CSV(w, results)
		})
	}
	return nil
}

func runTable2(o options) error {
	fmt.Println("== Experiment: connection interruption (paper §VII-C, Figure 12) ==")
	report, err := runMatrix(campaign.Matrix{
		Kinds:     []campaign.Kind{campaign.KindInterruption},
		Profiles:  profiles,
		FailModes: []switchsim.FailMode{switchsim.FailSafe, switchsim.FailSecure},
		TimeScale: o.scale,
		Seed:      o.seed,
		Trace:     o.trace,
	}, o, "table2")
	if err != nil {
		return err
	}
	results := report.InterruptionResults()
	fmt.Println()
	fmt.Print(experiment.RenderTableII(results))
	if o.csv != "" {
		return writeCSV(o.csv, "table2.csv", func(w *os.File) error {
			return experiment.WriteTableIICSV(w, results)
		})
	}
	return nil
}
