// Command attain-lab reproduces the ATTAIN paper's evaluation (§VII) on the
// simulated enterprise testbed: the flow modification suppression experiment
// (Figure 11) and the connection interruption experiment (Table II), across
// the Floodlight, POX, and Ryu controller profiles.
//
// Usage:
//
//	attain-lab -experiment fig11            # suppression, all controllers
//	attain-lab -experiment table2           # interruption, all combinations
//	attain-lab -experiment all              # both
//	attain-lab -experiment fig11 -full      # paper-faithful trial counts
//	attain-lab -scale 40                    # virtual-time speed-up
//
// By default a reduced timeline runs in under a minute; -full uses the
// paper's 60 ping and 30 iperf trials (slower).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"attain/internal/controller"
	"attain/internal/dataplane"
	"attain/internal/experiment"
	"attain/internal/monitor"
	"attain/internal/switchsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attain-lab:", err)
		os.Exit(1)
	}
}

var profiles = []controller.Profile{
	controller.ProfileFloodlight,
	controller.ProfilePOX,
	controller.ProfileRyu,
}

func run() error {
	experimentName := flag.String("experiment", "all", "fig11, table2, or all")
	scale := flag.Int("scale", 20, "virtual time speed-up factor")
	full := flag.Bool("full", false, "use the paper's full trial counts (60 ping / 30 iperf)")
	csvPath := flag.String("csv", "", "also write per-trial results as CSV (fig11.csv / table2.csv under this prefix)")
	flag.Parse()

	switch *experimentName {
	case "fig11":
		return runFig11(*scale, *full, *csvPath)
	case "table2":
		return runTable2(*scale, *csvPath)
	case "all":
		if err := runFig11(*scale, *full, *csvPath); err != nil {
			return err
		}
		fmt.Println()
		return runTable2(*scale, *csvPath)
	default:
		return fmt.Errorf("unknown experiment %q", *experimentName)
	}
}

// writeCSV writes one CSV artefact next to the given prefix.
func writeCSV(prefix, name string, write func(w *os.File) error) error {
	path := prefix + name
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func suppressionConfig(profile controller.Profile, attacked, full bool, scale int) experiment.SuppressionConfig {
	cfg := experiment.SuppressionConfig{
		Profile:   profile,
		Attacked:  attacked,
		TimeScale: scale,
		Settle:    3 * time.Second,
		Ping: monitor.PingConfig{
			Trials: 12, Interval: time.Second, Timeout: 2 * time.Second,
		},
		Iperf: monitor.IperfMonitorConfig{
			Trials: 4, Duration: 5 * time.Second, Gap: 2 * time.Second,
			Client: dataplane.IperfConfig{
				SegmentSize: 1400, Window: 16,
				RTO: 1500 * time.Millisecond, ConnectTimeout: 4 * time.Second,
			},
		},
	}
	if full {
		// The paper's timeline: 60 one-second ping trials, then 30
		// ten-second iperf trials separated by ten-second gaps.
		cfg.Ping = monitor.PingConfig{Trials: 60, Interval: time.Second, Timeout: 2 * time.Second}
		cfg.Iperf = monitor.IperfMonitorConfig{
			Trials: 30, Duration: 10 * time.Second, Gap: 10 * time.Second,
			Client: dataplane.IperfConfig{
				SegmentSize: 1400, Window: 16,
				RTO: 1500 * time.Millisecond, ConnectTimeout: 4 * time.Second,
			},
		}
	}
	return cfg
}

func runFig11(scale int, full bool, csvPrefix string) error {
	fmt.Println("== Experiment: flow modification suppression (paper §VII-B, Figure 10) ==")
	var results []*experiment.SuppressionResult
	byProfile := make(map[controller.Profile][2]*experiment.SuppressionResult)
	for _, profile := range profiles {
		var pair [2]*experiment.SuppressionResult
		for i, attacked := range []bool{false, true} {
			cond := "baseline"
			if attacked {
				cond = "attack"
			}
			fmt.Printf("running %s %s...\n", profile, cond)
			res, err := experiment.RunSuppression(suppressionConfig(profile, attacked, full, scale))
			if err != nil {
				return fmt.Errorf("%s %s: %w", profile, cond, err)
			}
			results = append(results, res)
			pair[i] = res
		}
		byProfile[profile] = pair
	}
	fmt.Println()
	fmt.Print(experiment.RenderFigure11(results))
	fmt.Println()
	for _, profile := range profiles {
		pair := byProfile[profile]
		fmt.Print(experiment.RenderControlPlaneOverhead(pair[0], pair[1]))
		fmt.Println()
	}
	if csvPrefix != "" {
		return writeCSV(csvPrefix, "fig11.csv", func(w *os.File) error {
			return experiment.WriteFigure11CSV(w, results)
		})
	}
	return nil
}

func runTable2(scale int, csvPrefix string) error {
	fmt.Println("== Experiment: connection interruption (paper §VII-C, Figure 12) ==")
	var results []*experiment.InterruptionResult
	for _, profile := range profiles {
		for _, mode := range []switchsim.FailMode{switchsim.FailSafe, switchsim.FailSecure} {
			fmt.Printf("running %s fail-%s...\n", profile, mode)
			res, err := experiment.RunInterruption(experiment.InterruptionConfig{
				Profile:         profile,
				FailMode:        mode,
				TimeScale:       scale,
				Settle:          3 * time.Second,
				AccessAttempts:  6,
				AccessInterval:  time.Second,
				TriggerWindow:   25 * time.Second,
				PostTriggerWait: 35 * time.Second,
				EchoInterval:    2 * time.Second,
				EchoTimeout:     6 * time.Second,
			})
			if err != nil {
				return fmt.Errorf("%s fail-%s: %w", profile, mode, err)
			}
			results = append(results, res)
		}
	}
	fmt.Println()
	fmt.Print(experiment.RenderTableII(results))
	if csvPrefix != "" {
		return writeCSV(csvPrefix, "table2.csv", func(w *os.File) error {
			return experiment.WriteTableIICSV(w, results)
		})
	}
	return nil
}
