// Command attain-campaign runs an attack campaign described by a JSON spec
// file: the cross-product of experiment kinds, controller profiles,
// template-generated attack conditions, switch fail modes, and trials, each
// cell executed on a fully isolated testbed by a bounded worker pool.
//
// Usage:
//
//	attain-campaign -spec examples/campaign/paper-eval.json -out results/
//	attain-campaign -spec spec.json -workers 8        # override spec workers
//	attain-campaign -spec spec.json -dry-run          # list scenarios only
//	attain-campaign -spec spec.json -out results/ -resume   # continue an interrupted run
//
// -resume keeps the valid results.jsonl prefix already in -out and runs
// only the remaining scenarios instead of failing or duplicating rows;
// the CSV aggregates and summary are rebuilt from the scenarios the
// resuming run executed (results.jsonl is always the complete set).
//
// Artifacts land under -out: results.jsonl (one record per scenario, in
// matrix order), fig11.csv / table2.csv aggregates, and summary.txt.
//
// Individual scenario failures do not fail the campaign — they are recorded
// in the artifacts and surfaced in the final summary, and the command still
// exits 0. Only spec, store, or flag errors exit 1. Interrupting with ^C
// stops dispatching new scenarios, lets in-flight ones drain, and records
// the rest as skipped.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"attain/internal/campaign"
	"attain/internal/experiment"
	"attain/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attain-campaign:", err)
		os.Exit(1)
	}
}

func run() error {
	specPath := flag.String("spec", "", "campaign spec file (JSON, required)")
	out := flag.String("out", "campaign-out", "artifact directory")
	workers := flag.Int("workers", 0, "override the spec's worker count")
	dryRun := flag.Bool("dry-run", false, "list the expanded scenarios without running them")
	resume := flag.Bool("resume", false, "continue an interrupted run: keep -out's valid results.jsonl prefix and run only the remaining scenarios")
	trace := flag.Bool("trace", false, "collect per-scenario telemetry traces (overrides the spec; written under -out as traces/*.jsonl)")
	debugAddr := flag.String("debug", "", "serve expvar and pprof debug endpoints on this address (e.g. localhost:6060)")
	flag.Parse()

	if *specPath == "" {
		flag.Usage()
		return fmt.Errorf("-spec is required")
	}
	if *debugAddr != "" {
		addr, err := telemetry.ServeDebug(*debugAddr)
		if err != nil {
			return fmt.Errorf("start debug server: %w", err)
		}
		fmt.Printf("debug endpoints on http://%s/debug/\n", addr)
	}
	spec, err := campaign.LoadSpec(*specPath)
	if err != nil {
		return err
	}
	matrix, err := spec.Matrix()
	if err != nil {
		return err
	}
	if *trace {
		matrix.Trace = true
	}
	scenarios, err := matrix.Scenarios()
	if err != nil {
		return err
	}

	if *dryRun {
		for _, sc := range scenarios {
			fmt.Printf("%3d  %-45s seed=%d\n", sc.Index, sc.Name, sc.Seed)
		}
		fmt.Printf("%d scenarios\n", len(scenarios))
		return nil
	}

	var store *campaign.Store
	if *resume {
		var done int
		store, done, err = campaign.ResumeStore(*out)
		if err != nil {
			return err
		}
		if done >= len(scenarios) {
			fmt.Printf("campaign already complete: %d/%d scenarios recorded in %s\n",
				done, len(scenarios), *out)
			return nil
		}
		if done > 0 {
			fmt.Printf("resuming: %d/%d scenarios already recorded, running the remaining %d\n",
				done, len(scenarios), len(scenarios)-done)
		}
		// Records stream in strict index order, so the recorded set is
		// always the prefix [0, done); only the tail remains.
		scenarios = scenarios[done:]
	} else {
		store, err = campaign.NewStore(*out)
		if err != nil {
			return err
		}
	}
	cfg := spec.RunnerConfig()
	if *workers > 0 {
		cfg.Workers = *workers
	}
	cfg.Store = store
	cfg.Progress = os.Stdout

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if spec.Name != "" {
		fmt.Printf("campaign %q: %d scenarios\n", spec.Name, len(scenarios))
	}
	report, err := campaign.NewRunner(cfg).Run(ctx, scenarios)
	if err != nil {
		return err
	}

	// Render whatever aggregate views the outcomes support.
	if supp := report.SuppressionResults(); len(supp) > 0 {
		fmt.Println()
		fmt.Print(experiment.RenderFigure11(supp))
	}
	if inter := report.InterruptionResults(); len(inter) > 0 {
		fmt.Println()
		fmt.Print(experiment.RenderTableII(inter))
	}
	fmt.Printf("\nartifacts written to %s\n", *out)
	return nil
}
