// Command attain-fabric runs one fabric-scale scenario: it generates a
// topology from a descriptor, instantiates every switch in-process wired
// to a shared controller profile (internal/topo), optionally interposes
// the injector with a topology-level attack, and reports convergence
// latencies plus the discovery audit.
//
// Usage:
//
//	attain-fabric -topo leafspine:4x12x2                  # baseline bring-up
//	attain-fabric -topo fattree:8 -attack lldp-poison     # topology poisoning
//	attain-fabric -topo jellyfish:200x6 -attack link-flap -scale 20
//	attain-fabric -topo linear:10 -attack fingerprint -profile pox
//	attain-fabric -topo ring:50 -json                     # machine-readable result
//
// Topology descriptors: linear:N[xH], ring:N[xH], leafspine:SxL[xH],
// fattree:K, jellyfish:NxD[xH] (H = hosts per switch). Attacks: baseline,
// lldp-poison, link-flap, fingerprint.
//
// The command exits 0 when the scenario ran; for attack runs the
// "deviation" field says whether the attack observably corrupted the
// controller's view. Exit 1 is reserved for scenario failures (bad flags,
// generation errors, bring-up timeouts).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"attain/internal/campaign"
	"attain/internal/topo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attain-fabric:", err)
		os.Exit(1)
	}
}

func run() error {
	topoDesc := flag.String("topo", "", "topology descriptor (required), e.g. leafspine:4x12x2")
	profileName := flag.String("profile", "floodlight", "controller profile: floodlight, pox, or ryu")
	attack := flag.String("attack", "baseline", "topology-level attack: baseline, lldp-poison, link-flap, or fingerprint")
	seed := flag.Int64("seed", 1, "generator and stochastic seed")
	scale := flag.Int("scale", 0, "virtual time scale (0/1 = real time)")
	observe := flag.Duration("observe", 3*time.Second, "attack observation window after discovery converges (wall time)")
	timeout := flag.Duration("timeout", 60*time.Second, "bring-up and discovery convergence timeout (wall time)")
	shards := flag.Int("shards", 0, "shard-hosted event loops for switches and injector (0 = goroutine per switch)")
	wave := flag.Int("wave", 0, "max concurrent handshakes per bring-up wave with -shards (0 = default 256)")
	asJSON := flag.Bool("json", false, "emit the full result as JSON")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile covering the scenario")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	if *topoDesc == "" {
		flag.Usage()
		return fmt.Errorf("-topo is required")
	}
	profile, err := campaign.ParseProfile(*profileName)
	if err != nil {
		return err
	}

	res, err := topo.RunScenario(topo.ScenarioConfig{
		Topology:        *topoDesc,
		Profile:         profile,
		Attack:          *attack,
		Seed:            *seed,
		TimeScale:       *scale,
		Observe:         *observe,
		ConnectTimeout:  *timeout,
		DiscoverTimeout: *timeout,
		Shards:          *shards,
		WaveSize:        *wave,
	})
	if err != nil {
		return err
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}

	fmt.Printf("fabric %s: %d switches, %d links, %d hosts (profile %s)\n",
		res.Topology, res.Switches, res.Links, res.Hosts, res.Profile)
	fmt.Printf("  connected in %.2fms (virtual), discovery %s in %.2fms\n",
		res.ConnectMS, convergeWord(res.DiscoveryConverged), res.DiscoverMS)
	fmt.Printf("  audit: %d/%d adjacencies, %d phantom, %d missing, %d port-status events\n",
		res.DiscoveredLinks, 2*res.Links, res.PhantomLinks, res.MissingLinks, res.PortStatusEvents)
	if *shards > 0 {
		fmt.Printf("  shard-hosted: %d shards, %d bring-up waves, peak %d goroutines\n",
			*shards, res.BringupWaves, res.PeakGoroutines)
	}
	if res.Attack != topo.AttackBaseline {
		fmt.Printf("  attack %s: deviation=%v", res.Attack, res.Deviation)
		if res.Detail != "" {
			fmt.Printf(" (%s)", res.Detail)
		}
		fmt.Println()
	}
	if fp := res.Fingerprint; fp != nil {
		fmt.Printf("  fingerprint: guess=%s median=%.2fms burst=%.2f single-threaded=%v\n",
			fp.Guess, fp.MedianMS, fp.BurstFactor, fp.SingleThreaded)
	}
	return nil
}

func convergeWord(ok bool) string {
	if ok {
		return "converged"
	}
	return "stalled"
}
