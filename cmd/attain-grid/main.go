// Command attain-grid runs a campaign distributed across worker processes:
// a coordinator shards the expanded scenario matrix over TCP under
// heartbeat-refreshed leases, workers execute scenarios on isolated
// testbeds, and results stream back into the same index-ordered artifact
// store attain-campaign writes — same seed, same bytes.
//
// Usage:
//
//	attain-grid serve -spec spec.json -out results/ -listen :7117
//	attain-grid work  -connect host:7117 -slots 2
//	attain-grid local -spec spec.json -out results/ -workers 3
//
// serve expands the spec and waits for workers; work connects to a
// coordinator and executes leases until the campaign completes; local is
// the single-machine mode — it starts a coordinator on loopback and
// auto-spawns -workers worker subprocesses (re-invoking this binary with
// "work"), so `attain-grid local` is a drop-in parallel attain-campaign.
//
// As in attain-campaign, individual scenario failures do not fail the
// campaign; they are recorded in the artifacts. A worker death or stall
// mid-scenario expires the lease and the scenario is requeued on another
// worker, so the campaign completes with a full result set regardless.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"syscall"
	"time"

	"attain/internal/campaign"
	"attain/internal/experiment"
	"attain/internal/grid"
	"attain/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "attain-grid:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: attain-grid <serve|work|local> [flags] (-h per mode for details)")
	}
	switch args[0] {
	case "serve":
		return runServe(args[1:])
	case "work":
		return runWork(args[1:])
	case "local":
		return runLocal(args[1:])
	default:
		return fmt.Errorf("unknown mode %q (want serve, work, or local)", args[0])
	}
}

// setupDebug starts the expvar/pprof endpoint and publishes the grid
// counters on it. The returned telemetry is always enabled so counters
// are collected even without -debug (they also feed the final summary).
func setupDebug(addr string) (*telemetry.Telemetry, error) {
	tel := telemetry.New(telemetry.Options{})
	tel.PublishExpvar("grid")
	if addr != "" {
		bound, err := telemetry.ServeDebug(addr)
		if err != nil {
			return nil, fmt.Errorf("start debug server: %w", err)
		}
		fmt.Printf("debug endpoints on http://%s/debug/\n", bound)
	}
	return tel, nil
}

// loadScenarios expands a spec file into the campaign's scenario list.
func loadScenarios(specPath string, trace bool) (*campaign.Spec, []campaign.Scenario, error) {
	spec, err := campaign.LoadSpec(specPath)
	if err != nil {
		return nil, nil, err
	}
	matrix, err := spec.Matrix()
	if err != nil {
		return nil, nil, err
	}
	if trace {
		matrix.Trace = true
	}
	scenarios, err := matrix.Scenarios()
	if err != nil {
		return nil, nil, err
	}
	return spec, scenarios, nil
}

// finishCampaign prints the aggregate views and artifact location, as
// attain-campaign does.
func finishCampaign(report *campaign.Report, out string) {
	if supp := report.SuppressionResults(); len(supp) > 0 {
		fmt.Println()
		fmt.Print(experiment.RenderFigure11(supp))
	}
	if inter := report.InterruptionResults(); len(inter) > 0 {
		fmt.Println()
		fmt.Print(experiment.RenderTableII(inter))
	}
	fmt.Printf("\nartifacts written to %s\n", out)
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("attain-grid serve", flag.ExitOnError)
	specPath := fs.String("spec", "", "campaign spec file (JSON, required)")
	out := fs.String("out", "campaign-out", "artifact directory")
	listen := fs.String("listen", ":7117", "address to accept workers on")
	lease := fs.Duration("lease", grid.DefaultLeaseTTL, "lease TTL before an unclaimed scenario is requeued")
	requeues := fs.Int("requeues", grid.DefaultRequeues, "max requeues per scenario before it is recorded failed")
	trace := fs.Bool("trace", false, "collect per-scenario telemetry traces (written under -out as traces/*.jsonl)")
	debugAddr := fs.String("debug", "", "serve expvar and pprof debug endpoints on this address (e.g. localhost:6060)")
	fs.Parse(args)
	if *specPath == "" {
		fs.Usage()
		return fmt.Errorf("-spec is required")
	}

	tel, err := setupDebug(*debugAddr)
	if err != nil {
		return err
	}
	spec, scenarios, err := loadScenarios(*specPath, *trace)
	if err != nil {
		return err
	}
	store, err := campaign.NewStore(*out)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *listen, err)
	}
	fmt.Printf("campaign %q: %d scenarios, accepting workers on %s\n",
		spec.Name, len(scenarios), ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	co := grid.NewCoordinator(grid.CoordinatorConfig{
		Campaign:  spec.Name,
		Scenarios: scenarios,
		Store:     store,
		LeaseTTL:  *lease,
		Requeues:  *requeues,
		Runner:    spec.RunnerConfig(),
		Telemetry: tel,
		Progress:  os.Stdout,
	})
	report, err := co.Serve(ctx, ln)
	if err != nil {
		return err
	}
	finishCampaign(report, *out)
	return nil
}

func runWork(args []string) error {
	fs := flag.NewFlagSet("attain-grid work", flag.ExitOnError)
	connect := fs.String("connect", "", "coordinator address (host:port, required)")
	name := fs.String("name", "", "worker name (default: local address)")
	slots := fs.Int("slots", 1, "scenarios to execute in parallel")
	timeout := fs.Duration("timeout", 0, "per-scenario deadline (0 = adopt the campaign's)")
	retries := fs.Int("retries", 0, "infra-failure retries per scenario (0 = adopt the campaign's)")
	backoff := fs.Duration("backoff", 0, "base retry backoff (0 = adopt the campaign's)")
	quiet := fs.Bool("quiet", false, "suppress per-scenario progress lines")
	debugAddr := fs.String("debug", "", "serve expvar and pprof debug endpoints on this address")
	fs.Parse(args)
	if *connect == "" {
		fs.Usage()
		return fmt.Errorf("-connect is required")
	}

	tel, err := setupDebug(*debugAddr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var progress *os.File
	if !*quiet {
		progress = os.Stdout
	}
	w := grid.NewWorker(grid.WorkerConfig{
		Name:  *name,
		Slots: *slots,
		Runner: campaign.RunnerConfig{
			Timeout: *timeout,
			Retries: *retries,
			Backoff: *backoff,
		},
		Telemetry: tel,
		Progress:  progress,
	})
	return w.Run(ctx, *connect)
}

func runLocal(args []string) error {
	fs := flag.NewFlagSet("attain-grid local", flag.ExitOnError)
	specPath := fs.String("spec", "", "campaign spec file (JSON, required)")
	out := fs.String("out", "campaign-out", "artifact directory")
	workers := fs.Int("workers", 2, "worker subprocesses to spawn")
	slots := fs.Int("slots", 1, "parallel scenarios per worker")
	lease := fs.Duration("lease", grid.DefaultLeaseTTL, "lease TTL before an unclaimed scenario is requeued")
	requeues := fs.Int("requeues", grid.DefaultRequeues, "max requeues per scenario before it is recorded failed")
	trace := fs.Bool("trace", false, "collect per-scenario telemetry traces")
	inprocess := fs.Bool("inprocess", false, "run workers as goroutines instead of subprocesses")
	debugAddr := fs.String("debug", "", "serve expvar and pprof debug endpoints on this address")
	fs.Parse(args)
	if *specPath == "" {
		fs.Usage()
		return fmt.Errorf("-spec is required")
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be >= 1")
	}

	tel, err := setupDebug(*debugAddr)
	if err != nil {
		return err
	}
	spec, scenarios, err := loadScenarios(*specPath, *trace)
	if err != nil {
		return err
	}
	store, err := campaign.NewStore(*out)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ccfg := grid.CoordinatorConfig{
		Campaign:  spec.Name,
		Scenarios: scenarios,
		Store:     store,
		LeaseTTL:  *lease,
		Requeues:  *requeues,
		Runner:    spec.RunnerConfig(),
		Telemetry: tel,
		Progress:  os.Stdout,
	}
	fmt.Printf("campaign %q: %d scenarios across %d local workers\n",
		spec.Name, len(scenarios), *workers)

	var report *campaign.Report
	if *inprocess {
		report, err = grid.RunLocal(ctx, grid.LocalConfig{
			Workers:     *workers,
			Coordinator: ccfg,
			Worker:      grid.WorkerConfig{Slots: *slots, Telemetry: tel},
		})
	} else {
		report, err = runLocalSubprocesses(ctx, ccfg, *workers, *slots)
	}
	if err != nil {
		return err
	}
	finishCampaign(report, *out)
	return nil
}

// runLocalSubprocesses starts the coordinator on an ephemeral loopback
// port and re-invokes this binary -workers times in "work" mode against
// it. Workers exit on their own when the coordinator sends DONE; whatever
// survives the campaign (e.g. after ^C) is killed on return.
func runLocalSubprocesses(ctx context.Context, ccfg grid.CoordinatorConfig, workers, slots int) (*campaign.Report, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("locate own binary for worker spawn: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("listen: %w", err)
	}
	addr := ln.Addr().String()

	cmds := make([]*exec.Cmd, 0, workers)
	for i := 1; i <= workers; i++ {
		cmd := exec.Command(self, "work",
			"-connect", addr,
			"-name", fmt.Sprintf("worker-%d", i),
			"-slots", fmt.Sprint(slots),
			"-quiet")
		cmd.Stdout = os.Stderr // keep stdout clean for the coordinator's progress
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			for _, running := range cmds {
				running.Process.Kill()
				running.Wait()
			}
			ln.Close()
			return nil, fmt.Errorf("spawn worker %d: %w", i, err)
		}
		cmds = append(cmds, cmd)
	}

	report, serveErr := grid.NewCoordinator(ccfg).Serve(ctx, ln)
	// Workers exit on their own when the coordinator sends DONE; reap
	// them, killing stragglers (e.g. after ^C) past a grace period.
	for _, cmd := range cmds {
		waited := make(chan struct{})
		go func(c *exec.Cmd) { c.Wait(); close(waited) }(cmd)
		select {
		case <-waited:
		case <-time.After(5 * time.Second):
			cmd.Process.Kill()
			<-waited
		}
	}
	if serveErr != nil {
		return nil, serveErr
	}
	return report, nil
}
