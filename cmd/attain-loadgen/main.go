// Command attain-loadgen is the injector's sustained-load harness: it
// stands up one in-process injector over buffered in-memory conns, drives
// tens of thousands of mock switch connections at a target offered load,
// and reports sustained throughput, delivery latency percentiles, and
// per-shard queue depth. Its whole point is an apples-to-apples duel
// between the two injector cores — the legacy goroutine-per-session pump
// path and the sharded batch-draining loops — measured by the exact same
// traffic generator.
//
// Usage:
//
//	attain-loadgen                          # both cores, 10k conns, open loop
//	attain-loadgen -mode sharded -shards 8  # one core, explicit shard count
//	attain-loadgen -conns 200 -duration 1s  # CI smoke scale
//	attain-loadgen | go run ./docs/perf/benchjson > BENCH_sustained.json
//
// Human-readable progress goes to stderr; stdout carries Go
// benchmark-format lines (BenchmarkSustained/mode=...) so the run pipes
// straight into docs/perf/benchjson and diffs with docs/perf/benchcmp.
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"attain/internal/clock"
	"attain/internal/core/inject"
	"attain/internal/core/lang"
	"attain/internal/core/model"
	"attain/internal/netaddr"
	"attain/internal/netem"
	"attain/internal/openflow"
	"attain/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attain-loadgen:", err)
		os.Exit(1)
	}
}

// loadCfg is one measurement's knobs, shared verbatim by both cores.
type loadCfg struct {
	conns    int
	rate     float64 // total offered msgs/sec; 0 = open loop
	duration time.Duration
	warmup   time.Duration
	shards   int
	batch    int
	senders  int
	ring     int
	events   int
	wave     int
}

func run() error {
	cfg := loadCfg{}
	mode := flag.String("mode", "both", "injector core to drive: sharded, pumps, or both")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile covering the measured windows")
	flag.IntVar(&cfg.conns, "conns", 10000, "concurrent mock switch connections")
	flag.Float64Var(&cfg.rate, "rate", 0, "total offered load in msgs/sec (0 = open loop, saturate)")
	flag.DurationVar(&cfg.duration, "duration", 3*time.Second, "measurement window after warmup")
	flag.DurationVar(&cfg.warmup, "warmup", 1*time.Second, "warmup before measuring")
	flag.IntVar(&cfg.shards, "shards", 4, "shard count for the sharded core")
	flag.IntVar(&cfg.batch, "batch", 256, "max frames per shard loop iteration")
	flag.IntVar(&cfg.senders, "senders", 4, "traffic generator worker goroutines")
	flag.IntVar(&cfg.ring, "ring", 8192, "per-direction conn ring buffer bytes")
	flag.IntVar(&cfg.events, "events", 16384, "injector event queue capacity (per shard / pump executor)")
	flag.IntVar(&cfg.wave, "wave", 0, "dial connections in concurrent waves of this size (0 = sequential)")
	flag.Parse()

	if cfg.conns < 1 || cfg.senders < 1 || cfg.shards < 1 {
		return fmt.Errorf("conns, senders, and shards must be positive")
	}
	var modes []string
	switch *mode {
	case "both":
		modes = []string{"pumps", "sharded"}
	case "sharded", "pumps":
		modes = []string{*mode}
	default:
		return fmt.Errorf("unknown -mode %q (want sharded, pumps, or both)", *mode)
	}

	// Bench-format headers so benchjson records the machine.
	fmt.Printf("goos: %s\ngoarch: %s\n", runtime.GOOS, runtime.GOARCH)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	results := map[string]result{}
	for _, m := range modes {
		fmt.Fprintf(os.Stderr, "== %s: %d conns, %s offered, %s measure (+%s warmup)\n",
			m, cfg.conns, offeredLabel(cfg.rate), cfg.duration, cfg.warmup)
		res, err := runLoad(cfg, m == "sharded")
		if err != nil {
			return fmt.Errorf("%s: %w", m, err)
		}
		res.mode = m
		results[m] = res
		report(res)
	}
	if sh, ok := results["sharded"]; ok {
		if pu, ok := results["pumps"]; ok && pu.msgsPerSec() > 0 {
			fmt.Fprintf(os.Stderr, "== sharded/pumps sustained throughput: %.2fx\n",
				sh.msgsPerSec()/pu.msgsPerSec())
		}
	}
	return nil
}

func offeredLabel(rate float64) string {
	if rate <= 0 {
		return "open-loop"
	}
	return fmt.Sprintf("%.0f msgs/s", rate)
}

// result is one core's measured window.
type result struct {
	mode           string
	conns          int
	sent, received uint64
	elapsed        time.Duration
	p50, p99, p999 time.Duration
	queueDepthMax  int64
	stalls         uint64
	imbalance      uint64
	batchP50       int64
}

func (r result) msgsPerSec() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.received) / r.elapsed.Seconds()
}

func report(r result) {
	fmt.Fprintf(os.Stderr,
		"   sustained %.0f msgs/s (%d delivered / %s), latency p50=%s p99=%s p999=%s\n",
		r.msgsPerSec(), r.received, r.elapsed.Round(time.Millisecond), r.p50, r.p99, r.p999)
	if r.mode == "sharded" {
		fmt.Fprintf(os.Stderr, "   shard queue depth max=%d, batch p50=%d frames, stalls=%d, imbalance=%d\n",
			r.queueDepthMax, r.batchP50, r.stalls, r.imbalance)
	}
	nsPerOp := 0.0
	if r.received > 0 {
		nsPerOp = float64(r.elapsed.Nanoseconds()) / float64(r.received)
	}
	// One benchmark-format line per mode: iterations = delivered messages,
	// ns/op = wall time per delivered message, plus custom units benchjson
	// keeps in its Extra map.
	fmt.Printf("BenchmarkSustained/mode=%s/conns=%d \t%8d\t%8.1f ns/op\t%12.0f msgs/s\t%8d p50-ns\t%8d p99-ns\t%8d p999-ns\t%8d qdepth-max\n",
		r.mode, r.conns, r.received, nsPerOp,
		r.msgsPerSec(), r.p50.Nanoseconds(), r.p99.Nanoseconds(), r.p999.Nanoseconds(), r.queueDepthMax)
}

// syntheticSystem builds a model with n switches on one controller. The
// two hosts exist only to satisfy the model's |H| >= 2 invariant.
func syntheticSystem(n int) *model.System {
	sys := &model.System{
		Controllers: []model.Controller{{ID: "c1", ListenAddr: "c1"}},
		Hosts: []model.Host{
			{ID: "h1", MAC: netaddr.MAC{0, 0, 0, 0, 0, 1}, IP: netaddr.IPv4{10, 0, 0, 1}},
			{ID: "h2", MAC: netaddr.MAC{0, 0, 0, 0, 0, 2}, IP: netaddr.IPv4{10, 0, 0, 2}},
		},
	}
	sys.Switches = make([]model.Switch, n)
	sys.ControlPlane = make([]model.Conn, n)
	for i := 0; i < n; i++ {
		id := model.NodeID(fmt.Sprintf("s%d", i+1))
		sys.Switches[i] = model.Switch{ID: id, DPID: uint64(i + 1), Ports: []uint16{1}}
		sys.ControlPlane[i] = model.Conn{Controller: "c1", Switch: id}
	}
	return sys
}

// passthroughAttack is the no-op attack: every frame traverses the full
// evaluate-and-deliver path but nothing matches, so the harness measures
// the proxy core itself.
func passthroughAttack() *lang.Attack {
	a := lang.NewAttack("loadgen-passthrough", "s0")
	a.AddState(&lang.State{Name: "s0"})
	return a
}

// collector is one controller-side connection's receive loop state. The
// samples slice is owned by its receiver goroutine until the WaitGroup
// drains; latencies are decimated 1-in-16 to keep measurement-window
// allocation churn off the measured path.
type collector struct {
	samples []int64
	seen    uint64
}

const sampleEvery = 16

// runLoad wires up one injector (sharded or pump core), drives it, and
// tears everything down again.
func runLoad(cfg loadCfg, sharded bool) (result, error) {
	tr := netem.NewBufferedMemTransport(cfg.ring)
	tele := telemetry.New(telemetry.Options{TraceCapacity: 1024})

	shards := 0
	if sharded {
		shards = cfg.shards
	}
	inj, err := inject.New(inject.Config{
		System:      syntheticSystem(cfg.conns),
		Attack:      passthroughAttack(),
		Transport:   tr,
		Clock:       clock.New(),
		LeanLog:     true,
		LogLimit:    4096,
		Telemetry:   tele,
		Shards:      shards,
		Batch:       cfg.batch,
		EventBuffer: cfg.events,
	})
	if err != nil {
		return result{}, err
	}

	// Fake controller: accept every proxied connection and time-stamp-check
	// the echo stream coming out of the injector.
	ln, err := tr.Listen("c1")
	if err != nil {
		return result{}, err
	}
	var (
		recording atomic.Bool
		received  atomic.Uint64
		sent      atomic.Uint64
		recvWG    sync.WaitGroup
		collMu    sync.Mutex
		colls     []*collector
	)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			co := &collector{samples: make([]int64, 0, 256)}
			collMu.Lock()
			colls = append(colls, co)
			collMu.Unlock()
			recvWG.Add(1)
			go func() {
				defer recvWG.Done()
				receiver(c, co, &recording, &received)
			}()
		}
	}()

	if err := inj.Start(); err != nil {
		ln.Close()
		return result{}, err
	}

	// Dial every mock switch. Each dial makes the injector accept, dial
	// the controller, and stand up a session before traffic starts. With
	// -wave the dials run in bounded concurrent waves — the same staged
	// bring-up shape the fabric uses, which at tens of thousands of conns
	// is much faster than sequential without an unbounded dial burst.
	swConns := make([]net.Conn, cfg.conns)
	dial := func(i int) error {
		conn := model.Conn{Controller: "c1", Switch: model.NodeID(fmt.Sprintf("s%d", i+1))}
		c, err := tr.Dial(inj.ProxyAddrFor(conn))
		if err != nil {
			return fmt.Errorf("dial conn %d: %w", i, err)
		}
		swConns[i] = c
		return nil
	}
	if cfg.wave > 0 {
		var dialErr atomic.Value
		for start := 0; start < cfg.conns; start += cfg.wave {
			end := start + cfg.wave
			if end > cfg.conns {
				end = cfg.conns
			}
			var wg sync.WaitGroup
			for i := start; i < end; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := dial(i); err != nil {
						dialErr.Store(err)
					}
				}()
			}
			wg.Wait()
			if err, ok := dialErr.Load().(error); ok {
				return result{}, err
			}
		}
	} else {
		for i := range swConns {
			if err := dial(i); err != nil {
				return result{}, err
			}
		}
	}
	fmt.Fprintf(os.Stderr, "   %d connections up, %d goroutines\n", cfg.conns, runtime.NumGoroutine())

	// Traffic generators: each worker owns an interleaved slice of conns
	// and pushes pre-marshaled echo frames, patching an 8-byte send
	// timestamp into the body. Writes block when a conn's ring fills —
	// offered load beyond the core's capacity turns into backpressure,
	// and the measured quantity is what the core actually sustains.
	stop := make(chan struct{})
	var sendWG sync.WaitGroup
	perWorker := cfg.rate / float64(cfg.senders)
	for w := 0; w < cfg.senders; w++ {
		mine := make([]net.Conn, 0, cfg.conns/cfg.senders+1)
		for i := w; i < cfg.conns; i += cfg.senders {
			mine = append(mine, swConns[i])
		}
		sendWG.Add(1)
		go func() {
			defer sendWG.Done()
			sender(mine, perWorker, stop, &recording, &sent)
		}()
	}

	// Sample shard queue depths while measuring.
	var depthMax atomic.Int64
	sampleStop := make(chan struct{})
	var sampleWG sync.WaitGroup
	if sharded {
		sampleWG.Add(1)
		go func() {
			defer sampleWG.Done()
			gauges := make([]*telemetry.Gauge, shards)
			for i := range gauges {
				gauges[i] = tele.Gauge(fmt.Sprintf("injector.shard.%d.queue_depth", i))
			}
			tick := time.NewTicker(20 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-sampleStop:
					return
				case <-tick.C:
					for _, g := range gauges {
						if v := g.Value(); v > depthMax.Load() {
							depthMax.Store(v)
						}
					}
				}
			}
		}()
	}

	// Warmup, then the measured window.
	time.Sleep(cfg.warmup)
	recording.Store(true)
	t0 := time.Now()
	time.Sleep(cfg.duration)
	recording.Store(false)
	elapsed := time.Since(t0)
	res := result{
		conns:    cfg.conns,
		sent:     sent.Load(),
		received: received.Load(),
		elapsed:  elapsed,
	}

	// Teardown: stop senders, close the switch side, stop the injector
	// (closing its controller-side conns), then drain the receivers.
	close(stop)
	sendWG.Wait()
	close(sampleStop)
	sampleWG.Wait()
	for _, c := range swConns {
		c.Close()
	}
	inj.Stop()
	ln.Close()
	recvWG.Wait()

	res.queueDepthMax = depthMax.Load()
	if sharded {
		for i := 0; i < shards; i++ {
			res.stalls += tele.Counter(fmt.Sprintf("injector.shard.%d.stalls", i)).Value()
			if p := tele.Histogram(fmt.Sprintf("injector.shard.%d.batch_size", i)).Quantile(0.5); p > res.batchP50 {
				res.batchP50 = p
			}
		}
		res.imbalance = tele.Counter("injector.shards.imbalance").Value()
	}

	collMu.Lock()
	all := make([]int64, 0, 1024)
	for _, co := range colls {
		all = append(all, co.samples...)
	}
	collMu.Unlock()
	res.p50, res.p99, res.p999 = percentiles(all)
	return res, nil
}

// senderBurst is how many frames a sender packs into one Conn.Write. One
// timestamp read and one ring operation cover the burst, keeping generator
// overhead off the measured path (the per-frame latency error is the burst
// assembly time, nanoseconds against millisecond-scale queueing).
const senderBurst = 16

// sender drives one worker's connections round-robin at perSec offered
// load (0 = open loop). The 16-byte echo frame is marshaled once; each
// burst is assembled in a reused buffer with the send timestamp patched
// into every frame body, so the generator allocates nothing in steady
// state and measured allocation pressure belongs to the injector.
func sender(conns []net.Conn, perSec float64, stop <-chan struct{}, recording *atomic.Bool, sent *atomic.Uint64) {
	wire, err := openflow.Marshal(0, &openflow.EchoRequest{Data: make([]byte, 8)})
	if err != nil || len(wire) < 16 {
		panic("loadgen: echo template marshal failed")
	}
	frame := len(wire)
	burst := make([]byte, 0, senderBurst*frame)
	start := time.Now()
	var sentN uint64
	idx := 0
	for {
		select {
		case <-stop:
			return
		default:
		}
		due := sentN + 16*senderBurst // open loop: bounded run between stop checks
		if perSec > 0 {
			due = uint64(perSec * time.Since(start).Seconds())
			if due <= sentN {
				time.Sleep(200 * time.Microsecond)
				continue
			}
		}
		for sentN < due {
			n := senderBurst
			if rem := due - sentN; rem < uint64(n) {
				n = int(rem)
			}
			binary.BigEndian.PutUint64(wire[8:], uint64(time.Now().UnixNano()))
			burst = burst[:0]
			for j := 0; j < n; j++ {
				burst = append(burst, wire...)
			}
			if _, err := conns[idx].Write(burst); err != nil {
				return
			}
			idx++
			if idx == len(conns) {
				idx = 0
			}
			sentN += uint64(n)
			if recording.Load() {
				sent.Add(uint64(n))
			}
		}
	}
}

// receiver drains one controller-side conn, counting deliveries and
// sampling end-to-end latency from the timestamp the sender patched into
// each echo body. The read buffer is pooled and reused for every frame.
func receiver(c net.Conn, co *collector, recording *atomic.Bool, received *atomic.Uint64) {
	defer c.Close()
	buf := openflow.GetBuffer()
	defer openflow.PutBuffer(buf)
	// The bufio layer turns per-frame ring reads into occasional bulk
	// copies, so receive-side overhead doesn't mask the injector cores'
	// difference.
	br := bufio.NewReaderSize(c, 4096)
	for {
		raw, err := openflow.ReadRawInto(br, buf)
		if err != nil {
			return
		}
		if !recording.Load() {
			continue
		}
		received.Add(1)
		co.seen++
		if co.seen%sampleEvery != 0 || len(raw) < 16 {
			continue
		}
		ts := int64(binary.BigEndian.Uint64(raw[8:16]))
		if lat := time.Now().UnixNano() - ts; lat > 0 {
			co.samples = append(co.samples, lat)
		}
	}
}

// percentiles sorts the merged latency samples and reads exact p50, p99,
// and p999 — no bucketing, the sample count is small enough to keep whole.
func percentiles(samples []int64) (p50, p99, p999 time.Duration) {
	if len(samples) == 0 {
		return 0, 0, 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	at := func(q float64) time.Duration {
		i := int(q*float64(len(samples))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(samples) {
			i = len(samples) - 1
		}
		return time.Duration(samples[i])
	}
	return at(0.50), at(0.99), at(0.999)
}
