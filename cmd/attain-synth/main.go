// Command attain-synth generates seeded, reproducible attack programs from
// the compiled vocabulary (internal/synth) and emits them as text DSL.
// The same (seed, index) pair always yields the byte-identical program, on
// any machine, so the digest of a run is a determinism oracle for grid
// shards and CI.
//
// Usage:
//
//	attain-synth -count 10 -seed 42 -topology linear:3x1   # print programs
//	attain-synth -count 10000 -seed 42 -digest             # print only the fleet digest
//	attain-synth -count 1000 -seed 42 -verify              # differential round-trip check
//	attain-synth -count 64 -seed 42 -out progs/            # one .attain file per program
//	attain-synth -count 32 -seed 42 -corpus internal/core/compile/testdata/fuzz
//
// -verify re-parses every emitted program through the production text
// front end and requires FormatAttack to reproduce it byte-identically,
// plus structural equality via Describe(); any drift exits 1.
//
// -corpus writes Go fuzz seed entries (go test fuzz v1) for FuzzParseAttack
// (whole programs) and FuzzParseExpr (each program's rule conditions) under
// the given directory, seeding the compile fuzzers with generator output.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"attain/internal/core/compile"
	"attain/internal/core/inject"
	"attain/internal/synth"
	"attain/internal/topo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attain-synth:", err)
		os.Exit(1)
	}
}

func run() error {
	count := flag.Int("count", 10, "number of programs to generate")
	seed := flag.Int64("seed", 42, "base seed; program i derives its own seed from (seed, i)")
	topology := flag.String("topology", "linear:3x1", "topology descriptor providing the system vocabulary")
	digest := flag.Bool("digest", false, "print only the fleet SHA-256 digest (hash of all program digests, in order)")
	verify := flag.Bool("verify", false, "differentially verify every program round-trips the text front end byte-identically")
	out := flag.String("out", "", "write one <name>.attain file per program under this directory instead of stdout")
	corpus := flag.String("corpus", "", "write Go fuzz corpus seed entries for FuzzParseAttack and FuzzParseExpr under this directory")
	flag.Parse()

	if *count < 1 {
		return fmt.Errorf("-count must be >= 1, got %d", *count)
	}
	g, err := topo.Parse(*topology, *seed)
	if err != nil {
		return err
	}
	sys := g.System()
	names := inject.TemplateNames()
	for name := range topo.PhantomTemplates(g) {
		names = append(names, name)
	}
	for name := range topo.FloodTemplates(g) {
		names = append(names, name)
	}
	gen, err := synth.New(synth.Config{
		Seed:  *seed,
		Vocab: synth.SystemVocabulary(sys, names...),
	})
	if err != nil {
		return err
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
	}
	if *corpus != "" {
		for _, sub := range []string{"FuzzParseAttack", "FuzzParseExpr"} {
			if err := os.MkdirAll(filepath.Join(*corpus, sub), 0o755); err != nil {
				return err
			}
		}
	}

	fleet := sha256.New()
	seen := make(map[string]int, *count)
	for i := 0; i < *count; i++ {
		prog, err := gen.Program(i)
		if err != nil {
			return fmt.Errorf("program %d: %w", i, err)
		}
		sum := prog.SHA256()
		if prev, dup := seen[sum]; dup {
			return fmt.Errorf("program %d duplicates program %d (digest %s)", i, prev, sum)
		}
		seen[sum] = i
		fleet.Write([]byte(sum))

		if *verify {
			if err := verifyProgram(prog, gen); err != nil {
				return fmt.Errorf("program %d: %w", i, err)
			}
		}
		switch {
		case *out != "":
			name := fmt.Sprintf("%s.attain", prog.Attack.Name)
			if err := os.WriteFile(filepath.Join(*out, name), []byte(prog.DSL), 0o644); err != nil {
				return err
			}
		case !*digest && *corpus == "":
			fmt.Print(prog.DSL)
		}
		if *corpus != "" {
			if err := writeCorpus(*corpus, prog); err != nil {
				return err
			}
		}
	}

	sum := hex.EncodeToString(fleet.Sum(nil))
	if *digest {
		fmt.Println(sum)
		return nil
	}
	fmt.Fprintf(os.Stderr, "attain-synth: %d programs, fleet digest %s\n", *count, sum)
	return nil
}

// verifyProgram is the differential oracle: the emitted DSL must re-parse
// through the production front end, re-format byte-identically, and
// describe the same structure as the generator's in-memory attack.
func verifyProgram(prog *synth.Program, gen *synth.Generator) error {
	reparsed, err := compile.ParseAttack(prog.DSL, gen.System())
	if err != nil {
		return fmt.Errorf("does not reparse: %w\n%s", err, prog.DSL)
	}
	if got := compile.FormatAttack(reparsed); got != prog.DSL {
		return fmt.Errorf("format round trip drifted:\n--- emitted ---\n%s--- reformatted ---\n%s", prog.DSL, got)
	}
	if got, want := reparsed.Describe(), prog.Attack.Describe(); got != want {
		return fmt.Errorf("structure drifted:\n--- generated ---\n%s--- reparsed ---\n%s", want, got)
	}
	if err := reparsed.Validate(gen.System(), gen.Attacker()); err != nil {
		return fmt.Errorf("reparsed program invalid: %w", err)
	}
	return nil
}

// writeCorpus emits the program (and each of its rule conditions) as Go
// fuzz corpus seed entries under dir.
func writeCorpus(dir string, prog *synth.Program) error {
	entry := func(sub, name, input string) error {
		body := "go test fuzz v1\nstring(" + strconv.Quote(input) + ")\n"
		return os.WriteFile(filepath.Join(dir, sub, name), []byte(body), 0o644)
	}
	if err := entry("FuzzParseAttack", prog.Attack.Name, prog.DSL); err != nil {
		return err
	}
	for _, sn := range prog.Attack.StateNames() {
		for _, rule := range prog.Attack.States[sn].Rules {
			name := fmt.Sprintf("%s-%s-%s", prog.Attack.Name, sn, rule.Name)
			if err := entry("FuzzParseExpr", name, rule.Cond.String()); err != nil {
				return err
			}
		}
	}
	return nil
}
