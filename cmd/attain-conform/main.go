// Command attain-conform runs the OpenFlow 1.0 conformance suite (an
// OFTest-style validation, which the ATTAIN paper's methodology subsumes)
// against a switch implementation.
//
// With no flags it validates the in-tree switchsim switch. With -listen it
// waits for an external OpenFlow 1.0 switch to dial in over TCP and runs
// the control-channel checks against it (data-plane checks require port
// taps and are skipped for external switches).
//
// Usage:
//
//	attain-conform                      # validate the built-in switch
//	attain-conform -listen :6653       # validate an external switch
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"attain/internal/clock"
	"attain/internal/conformance"
	"attain/internal/netem"
	"attain/internal/switchsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attain-conform:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "", "TCP address to await an external switch on (empty: test the built-in switch)")
	timeout := flag.Duration("timeout", 3*time.Second, "per-check timeout")
	flag.Parse()

	if *listen != "" {
		return runExternal(*listen, *timeout)
	}
	return runBuiltin(*timeout)
}

func runBuiltin(timeout time.Duration) error {
	clk := clock.New()
	tr := netem.NewMemTransport()
	ln, err := tr.Listen("harness")
	if err != nil {
		return err
	}
	defer ln.Close()

	sut := switchsim.New(switchsim.Config{
		Name: "sut", DPID: 1, ControllerAddr: "harness", Transport: tr,
		EchoInterval: time.Minute, EchoTimeout: 10 * time.Minute,
	}, clk)
	ports := make(map[uint16]conformance.PortIO)
	for _, no := range []uint16{1, 2} {
		recv := make(chan []byte, 256)
		in := sut.AttachPort(no, "tap", func(frame []byte) {
			select {
			case recv <- append([]byte(nil), frame...):
			default:
			}
		})
		ports[no] = conformance.PortIO{Send: in, Recv: recv}
	}
	sut.Start()
	defer sut.Stop()

	conn, err := ln.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()
	return report(conformance.Run(conformance.Config{
		Conn: conn, Ports: ports, Timeout: timeout, ExpectedDPID: 1,
	}))
}

func runExternal(addr string, timeout time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("waiting for a switch to connect to %s ...\n", ln.Addr())
	conn, err := ln.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Printf("switch connected from %s; running control-channel checks\n", conn.RemoteAddr())
	// No data-plane taps for an external switch: only the checks that
	// need none will pass; the rest report the missing taps.
	return report(conformance.Run(conformance.Config{
		Conn: conn, Ports: map[uint16]conformance.PortIO{}, Timeout: timeout,
	}))
}

func report(results []conformance.Result) error {
	fmt.Print(conformance.Format(results))
	if _, failed := conformance.Summary(results); failed > 0 {
		return fmt.Errorf("%d checks failed", failed)
	}
	return nil
}
