// Command attain-serve is injection-as-a-service: a long-lived HTTP
// service that accepts campaign specs, runs them on a durable in-process
// grid (journaled leases + resumable artifact prefixes), and serves live
// status, SSE progress streams, and artifact downloads.
//
// Usage:
//
//	attain-serve -listen :7118 -root campaigns/
//
// Submit a campaign and watch it:
//
//	curl -d @spec.json http://localhost:7118/api/campaigns
//	curl http://localhost:7118/api/campaigns/c0000
//	curl -N http://localhost:7118/api/campaigns/c0000/events
//	curl -O http://localhost:7118/api/campaigns/c0000/artifacts/results.jsonl
//
// Durability is the point: every lease decision is journaled and results
// land as a validated prefix, so killing the process mid-campaign (even
// SIGKILL) loses nothing — restart attain-serve over the same -root and
// interrupted campaigns resume where they stopped, producing the same
// bytes an uninterrupted run would have.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"attain/internal/gridsvc"
	"attain/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "attain-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("attain-serve", flag.ExitOnError)
	listen := fs.String("listen", ":7118", "HTTP address to serve the API on")
	root := fs.String("root", "campaigns", "directory holding one subdirectory per campaign")
	workers := fs.Int("workers", 2, "in-process grid workers per campaign")
	slots := fs.Int("slots", 2, "parallel scenarios per worker (a spec's \"workers\" knob overrides)")
	lease := fs.Duration("lease", 0, "lease TTL before an unresponsive worker's scenarios requeue (0 = grid default)")
	steal := fs.Int("steal", 0, "work-steal budget per scenario (0 = grid default, negative disables stealing)")
	batch := fs.Int("batch", 0, "results per RESULT_BATCH frame (0 = grid default, negative disables batching)")
	lean := fs.Bool("lean", false, "drop outcomes from coordinator memory once recorded (flat memory on huge campaigns)")
	debugAddr := fs.String("debug", "", "serve expvar and pprof debug endpoints on this address (e.g. localhost:6060)")
	fs.Parse(args)

	if *debugAddr != "" {
		bound, err := telemetry.ServeDebug(*debugAddr)
		if err != nil {
			return fmt.Errorf("start debug server: %w", err)
		}
		fmt.Printf("debug endpoints on http://%s/debug/\n", bound)
	}

	svc, err := gridsvc.New(gridsvc.Config{
		Root: *root,
		Options: gridsvc.Options{
			Workers:      *workers,
			Slots:        *slots,
			LeaseTTL:     *lease,
			StealBudget:  *steal,
			BatchResults: *batch,
			DropOutcomes: *lean,
			Logf: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *listen, err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	fmt.Printf("serving on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Graceful stop: abort running campaigns crash-equivalently (they
	// resume on the next start) and drain in-flight HTTP requests.
	fmt.Println("shutting down: aborting running campaigns (resumable)")
	svc.Shutdown()
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
